// Package journal reads and mines the deterministic JSONL campaign journals
// written by `-trace`. It is the offline half of the telemetry layer: where
// internal/metrics watches a live campaign, this package reconstructs
// throughput, time-to-coverage, board-time budgets and cross-tier verdicts
// from a finished journal without re-running anything — the analyses behind
// the eoftrace CLI.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

// Journal is one parsed campaign journal.
type Journal struct {
	// Header is the versioned preamble; HasHeader is false for journals
	// written before the header record existed (readers warn but proceed).
	Header    trace.Header
	HasHeader bool
	Events    []trace.Event
	// TornTail is non-empty when the journal's final line failed to decode:
	// a campaign killed mid-write (crash, kill -9, power loss) tears at most
	// the last line, so readers treat it as a warning — the events before it
	// are intact — instead of rejecting the whole journal. A decode failure
	// anywhere but the final line is still an error.
	TornTail string
}

// wireEvent mirrors trace.AppendJSON's field names for decoding.
type wireEvent struct {
	Seq    uint64 `json:"seq"`
	AtNS   int64  `json:"at_ns"`
	Shard  int    `json:"shard"`
	Kind   string `json:"kind"`
	Exec   int    `json:"exec"`
	Edges  int    `json:"edges"`
	Reason string `json:"reason"`
	DurNS  int64  `json:"dur_ns"`
}

// Read parses a JSONL journal. The first line may be a versioned header;
// unknown schema versions are an error (the wire format may have changed
// under the reader), a missing header is tolerated for pre-versioning
// journals. Unknown event kinds within a supported version are an error —
// they indicate a corrupt or newer-than-claimed journal — unless they occur
// on the final line, where a decode failure of either sort means the writer
// was killed mid-line: the journal is returned with TornTail set instead.
func Read(r io.Reader) (*Journal, error) {
	j := &Journal{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	// pending holds a decode failure until the next line proves it was not
	// the journal's torn tail.
	var pending error
	for sc.Scan() {
		line := sc.Bytes()
		lineNo++
		if len(line) == 0 {
			continue
		}
		if pending != nil {
			return nil, pending
		}
		if lineNo == 1 && trace.IsHeaderLine(line) {
			h, err := trace.ParseHeader(line)
			if err != nil {
				return nil, err
			}
			j.Header = h
			j.HasHeader = true
			continue
		}
		var we wireEvent
		if err := json.Unmarshal(line, &we); err != nil {
			pending = fmt.Errorf("journal: line %d: %w", lineNo, err)
			continue
		}
		kind, ok := trace.KindByName(we.Kind)
		if !ok {
			pending = fmt.Errorf("journal: line %d: unknown event kind %q", lineNo, we.Kind)
			continue
		}
		j.Events = append(j.Events, trace.Event{
			Seq:    we.Seq,
			At:     time.Duration(we.AtNS),
			Shard:  we.Shard,
			Kind:   kind,
			Exec:   we.Exec,
			Edges:  we.Edges,
			Reason: we.Reason,
			Dur:    time.Duration(we.DurNS),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if pending != nil {
		j.TornTail = fmt.Sprintf("torn final line tolerated (%v)", pending)
	}
	return j, nil
}

// emulStart returns the first emulation-tier shard index, or -1. Headerless
// journals cannot be tier-attributed, so everything counts as hardware.
func (j *Journal) emulStart() int {
	if !j.HasHeader {
		return -1
	}
	return j.Header.EmulStart()
}

// ShardBudget is one shard's reconstructed board-time budget.
type ShardBudget struct {
	Shard    int
	TimeBy   trace.TimeBy
	Duration time.Duration
	// Drift is TimeBy.Sum() - Duration; zero when the journal satisfies the
	// report invariant (every shard's buckets sum to its accounted duration).
	Drift time.Duration
}

// Summary is the campaign overview eoftrace prints: totals, rates, and the
// board-time budget rebuilt from the journal's TimeBudget records.
type Summary struct {
	Events   int
	Shards   int
	Execs    int
	HWExecs  int
	EmExecs  int
	Edges    int // distinct hardware-tier edges (last sync barrier in fleets)
	EmEdges  int // distinct emulation-tier edges, tiered campaigns only
	Restores int
	ByReason map[string]int
	Reflash  int
	Bugs     int
	Triaged  int
	Retries  int
	Reconns  int
	Quarant  int

	// Checkpoints and Distills count the persistence layer's campaign-level
	// (shard -1) stream events; DistillDropped totals the entries
	// distillation removed and DurableEdges is the edge count the last
	// checkpoint made durable — the audit trail for daemon-run campaigns.
	// All zero for campaigns run without a corpus store.
	Checkpoints    int
	Distills       int
	DistillDropped int
	DurableEdges   int

	// VirtualEnd is the journal's clock high-water mark; Duration is the
	// accounted campaign duration from the TimeBudget records (zero for
	// journals predating them).
	VirtualEnd time.Duration
	Duration   time.Duration
	TimeBy     trace.TimeBy // summed across shards
	Budgets    []ShardBudget
}

// ExecsPerSec returns hardware-tier executions per accounted virtual second.
func (s *Summary) ExecsPerSec() float64 {
	d := s.Duration
	if d == 0 {
		d = s.VirtualEnd
	}
	if d <= 0 {
		return 0
	}
	return float64(s.HWExecs) / d.Seconds()
}

// Summarize folds a journal into its campaign overview.
func Summarize(j *Journal) *Summary {
	s := &Summary{Events: len(j.Events), ByReason: map[string]int{}}
	emulStart := j.emulStart()
	shards := map[int]bool{}
	budgets := map[int]*ShardBudget{}
	covSum := 0
	for _, ev := range j.Events {
		if ev.Shard >= 0 {
			// Negative shards are campaign-level streams (the persistence
			// layer's checkpoint/distill events), not boards.
			shards[ev.Shard] = true
		}
		if ev.At > s.VirtualEnd {
			s.VirtualEnd = ev.At
		}
		emul := emulStart >= 0 && ev.Shard >= emulStart
		switch ev.Kind {
		case trace.ExecEnd:
			s.Execs++
			if emul {
				s.EmExecs++
			} else {
				s.HWExecs++
			}
		case trace.CovGain:
			if !emul {
				covSum += ev.Edges
			}
		case trace.SyncEpoch:
			if emul {
				if ev.Edges > s.EmEdges {
					s.EmEdges = ev.Edges
				}
			} else if ev.Edges > s.Edges {
				s.Edges = ev.Edges
			}
		case trace.RestoreBegin:
			s.Restores++
			s.ByReason[ev.Reason]++
		case trace.Reflash:
			s.Reflash++
		case trace.Bug:
			s.Bugs++
		case trace.TriageEnd:
			s.Triaged++
		case trace.LinkRetry:
			s.Retries++
		case trace.LinkReconnect:
			s.Reconns++
		case trace.Quarantine:
			s.Quarant++
		case trace.Checkpoint:
			// Campaign-level persister stream: Exec is the epoch ordinal,
			// Edges the durable coverage the checkpoint committed.
			s.Checkpoints++
			if ev.Edges > s.DurableEdges {
				s.DurableEdges = ev.Edges
			}
		case trace.Distill:
			s.Distills++
			s.DistillDropped += ev.Edges
		case trace.TimeBudget:
			b := budgets[ev.Shard]
			if b == nil {
				b = &ShardBudget{Shard: ev.Shard}
				budgets[ev.Shard] = b
			}
			switch ev.Reason {
			case "duration":
				b.Duration = ev.Dur
			case "restoring-delta":
				b.TimeBy.RestoringDelta = ev.Dur
			case "restoring-full":
				b.TimeBy.RestoringFull = ev.Dur
			default:
				for _, c := range trace.Categories() {
					if c.String() == ev.Reason {
						b.TimeBy.Add(c, ev.Dur)
					}
				}
			}
		}
	}
	if covSum > s.Edges {
		s.Edges = covSum
	}
	s.Shards = len(shards)
	// Budgets in shard order, with the invariant cross-check.
	for shard := 0; ; shard++ {
		b := budgets[shard]
		if b == nil {
			if len(s.Budgets) == len(budgets) {
				break
			}
			continue
		}
		b.Drift = b.TimeBy.Sum() - b.Duration
		s.TimeBy.Merge(b.TimeBy)
		if b.Duration > s.Duration {
			s.Duration = b.Duration
		}
		s.Budgets = append(s.Budgets, *b)
	}
	return s
}

// CovPoint is one step of the time-to-coverage series.
type CovPoint struct {
	At    time.Duration
	Edges int // cumulative hardware-tier edges
}

// Plateau is a coverage stall: the longest virtual-time window containing no
// hardware-tier coverage gain (including the leading window before the first
// gain and the trailing window after the last one).
type Plateau struct {
	Start, End time.Duration
}

// Dur returns the plateau length.
func (p Plateau) Dur() time.Duration { return p.End - p.Start }

// Cov extracts the time-to-coverage series and the longest plateau. The
// series steps at every hardware-tier cov-gain event; end is the campaign's
// virtual end (for the trailing plateau window). Fleet journals interleave
// shard streams per sync epoch, so gains are re-sorted onto the virtual
// timeline before accumulating.
func Cov(j *Journal) ([]CovPoint, Plateau) {
	emulStart := j.emulStart()
	var pts []CovPoint
	end := time.Duration(0)
	for _, ev := range j.Events {
		if ev.At > end {
			end = ev.At
		}
		if ev.Kind != trace.CovGain {
			continue
		}
		if emulStart >= 0 && ev.Shard >= emulStart {
			continue
		}
		pts = append(pts, CovPoint{At: ev.At, Edges: ev.Edges})
	}
	sort.SliceStable(pts, func(a, b int) bool { return pts[a].At < pts[b].At })
	sum := 0
	for i := range pts {
		sum += pts[i].Edges
		pts[i].Edges = sum
	}
	plateau := Plateau{Start: 0, End: end}
	if len(pts) > 0 {
		plateau = Plateau{Start: 0, End: pts[0].At}
		prev := pts[0].At
		for _, p := range pts[1:] {
			if p.At-prev > plateau.Dur() {
				plateau = Plateau{Start: prev, End: p.At}
			}
			prev = p.At
		}
		if end-prev > plateau.Dur() {
			plateau = Plateau{Start: prev, End: end}
		}
	}
	return pts, plateau
}

// Sink is one aggregated time sink for the bottleneck analysis.
type Sink struct {
	Shard    int
	Tier     string // "hw" or "emul" ("" for headerless journals)
	Category string
	Dur      time.Duration
	Share    float64 // of the shard's accounted duration
}

// Bottlenecks ranks board-time sinks per shard from the TimeBudget records,
// worst first within each shard (shards in index order). Journals predating
// the records yield a partial ranking rebuilt from restore/triage end-event
// durations.
func Bottlenecks(j *Journal) []Sink {
	s := Summarize(j)
	emulStart := j.emulStart()
	var out []Sink
	if len(s.Budgets) > 0 {
		for _, b := range s.Budgets {
			total := b.Duration
			if total == 0 {
				total = b.TimeBy.Sum()
			}
			var sinks []Sink
			for _, c := range trace.Categories() {
				d := b.TimeBy.Of(c)
				share := 0.0
				if total > 0 {
					share = float64(d) / float64(total)
				}
				sinks = append(sinks, Sink{Shard: b.Shard, Category: c.String(), Dur: d, Share: share})
			}
			sortSinks(sinks)
			for i := range sinks {
				if emulStart >= 0 {
					if sinks[i].Shard >= emulStart {
						sinks[i].Tier = "emul"
					} else {
						sinks[i].Tier = "hw"
					}
				}
			}
			out = append(out, sinks...)
		}
		return out
	}
	// Fallback: begin/end pairs carry the only durations in old journals.
	perShard := map[int]map[string]time.Duration{}
	for _, ev := range j.Events {
		var cat string
		switch ev.Kind {
		case trace.RestoreEnd:
			cat = "restoring"
		case trace.TriageEnd:
			cat = "triaging"
		default:
			continue
		}
		m := perShard[ev.Shard]
		if m == nil {
			m = map[string]time.Duration{}
			perShard[ev.Shard] = m
		}
		m[cat] += ev.Dur
	}
	maxShard := -1
	for shard := range perShard {
		if shard > maxShard {
			maxShard = shard
		}
	}
	for shard := 0; shard <= maxShard; shard++ {
		m := perShard[shard]
		if m == nil {
			continue
		}
		var sinks []Sink
		for _, cat := range []string{"restoring", "triaging"} {
			if d, ok := m[cat]; ok {
				sinks = append(sinks, Sink{Shard: shard, Category: cat, Dur: d})
			}
		}
		sortSinks(sinks)
		out = append(out, sinks...)
	}
	return out
}

func sortSinks(sinks []Sink) {
	for i := 1; i < len(sinks); i++ {
		for k := i; k > 0 && sinks[k].Dur > sinks[k-1].Dur; k-- {
			sinks[k], sinks[k-1] = sinks[k-1], sinks[k]
		}
	}
}

// Verdict is one entry of the cross-tier confirmation timeline.
type Verdict struct {
	At        time.Duration
	HWShard   int // the confirming hardware engine
	EmulShard int // the emulation shard that proposed the observation
	Confirmed bool
	Reason    string // "cov", "crash:<cluster>", or the divergence kind
	Edges     int
}

// Divergences extracts the tier-confirm / tier-diverge timeline in journal
// order (empty for untiered campaigns).
func Divergences(j *Journal) []Verdict {
	var out []Verdict
	for _, ev := range j.Events {
		switch ev.Kind {
		case trace.TierConfirm, trace.TierDiverge:
			out = append(out, Verdict{
				At:        ev.At,
				HWShard:   ev.Shard,
				EmulShard: ev.Exec,
				Confirmed: ev.Kind == trace.TierConfirm,
				Reason:    ev.Reason,
				Edges:     ev.Edges,
			})
		}
	}
	return out
}
