package journal

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

// synth builds a JSONL journal from a header (nil for headerless) and events.
func synth(hdr *trace.Header, evs []trace.Event) []byte {
	var b []byte
	if hdr != nil {
		b = trace.AppendHeaderJSON(b, *hdr)
	}
	for i, ev := range evs {
		ev.Seq = uint64(i)
		b = trace.AppendJSON(b, ev)
	}
	return b
}

func TestReadHeaderAndEvents(t *testing.T) {
	hdr := trace.Header{OS: "zephyr", Board: "stm32h745", Seed: 9, Shards: 2, EmulShards: 3, Digest: "abc"}
	raw := synth(&hdr, []trace.Event{
		{Kind: trace.ExecEnd, Shard: 0, Exec: 1, At: time.Second},
		{Kind: trace.CovGain, Shard: 0, Edges: 5, At: time.Second, Reason: "x"},
	})
	j, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !j.HasHeader || j.Header.OS != "zephyr" || j.Header.EmulShards != 3 {
		t.Fatalf("header: %+v", j.Header)
	}
	if j.Header.EmulStart() != 2 {
		t.Fatalf("emul start: %d", j.Header.EmulStart())
	}
	if len(j.Events) != 2 || j.Events[1].Kind != trace.CovGain || j.Events[1].Edges != 5 {
		t.Fatalf("events: %+v", j.Events)
	}
}

func TestReadHeaderless(t *testing.T) {
	raw := synth(nil, []trace.Event{{Kind: trace.ExecEnd, Shard: 0, At: time.Second}})
	j, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if j.HasHeader {
		t.Fatal("phantom header")
	}
	if j.emulStart() != -1 {
		t.Fatalf("headerless journals must not tier-attribute: %d", j.emulStart())
	}
}

func TestReadRejectsFutureVersionAndUnknownKind(t *testing.T) {
	future := `{"kind":"journal","v":99,"os":"zephyr","board":"b","seed":1,"shards":1}` + "\n"
	if _, err := Read(strings.NewReader(future)); err == nil {
		t.Fatal("future schema version accepted")
	}
	// An unknown kind (or any decode failure) anywhere but the final line is
	// a hard error: later well-formed lines prove the journal was not torn.
	unknown := synth(nil, nil)
	unknown = append(unknown, []byte(`{"seq":0,"at_ns":2,"shard":0,"kind":"warp-drive"}`+"\n")...)
	unknown = append(unknown, trace.AppendJSON(nil, trace.Event{Kind: trace.ExecEnd})...)
	if _, err := Read(bytes.NewReader(unknown)); err == nil {
		t.Fatal("unknown event kind followed by more lines accepted")
	}
}

// TestReadToleratesTornTail checks the crash-consistency contract: a journal
// whose writer was killed mid-line (kill -9, power loss) parses with a
// TornTail warning instead of an error, keeping every intact event.
func TestReadToleratesTornTail(t *testing.T) {
	raw := synth(nil, []trace.Event{
		{Kind: trace.ExecEnd, Shard: 0, At: time.Second},
		{Kind: trace.CovGain, Shard: 0, Edges: 3, At: 2 * time.Second},
	})
	// Tear the final line mid-record.
	torn := raw[:len(raw)-15]
	j, err := Read(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(j.Events) != 1 || j.Events[0].Kind != trace.ExecEnd {
		t.Fatalf("intact prefix lost: %+v", j.Events)
	}
	if j.TornTail == "" {
		t.Fatal("torn tail not reported")
	}
	// An unknown kind on the final line is the same story: the writer may
	// have died mid-word.
	unk := synth(nil, []trace.Event{{Kind: trace.ExecEnd}})
	unk = append(unk, []byte(`{"seq":1,"at_ns":2,"shard":0,"kind":"warp`)...)
	j, err = Read(bytes.NewReader(unk))
	if err != nil || j.TornTail == "" || len(j.Events) != 1 {
		t.Fatalf("final-line decode failure: j=%+v err=%v", j, err)
	}
	// An intact journal reports no tear.
	j = mustRead(t, raw)
	if j.TornTail != "" {
		t.Fatalf("phantom tear: %s", j.TornTail)
	}
}

// TestSummarizeSkipsCampaignStream checks that the persistence layer's
// shard -1 events count as zero boards but still surface in the summary's
// checkpoint/distill audit counters (they used to vanish silently).
func TestSummarizeSkipsCampaignStream(t *testing.T) {
	evs := []trace.Event{
		{Kind: trace.ExecEnd, Shard: 0, At: time.Second},
		{Kind: trace.Checkpoint, Shard: -1, Exec: 1, Edges: 12, At: time.Second},
		{Kind: trace.Checkpoint, Shard: -1, Exec: 2, Edges: 20, At: 2 * time.Second},
		{Kind: trace.Distill, Shard: -1, Exec: 2, Edges: 3, Reason: "kept:4", At: 2 * time.Second},
	}
	s := Summarize(mustRead(t, synth(nil, evs)))
	if s.Shards != 1 {
		t.Fatalf("shards = %d, want 1 (campaign stream is not a board)", s.Shards)
	}
	if s.Events != 4 {
		t.Fatalf("events = %d", s.Events)
	}
	if s.Checkpoints != 2 || s.DurableEdges != 20 {
		t.Fatalf("checkpoints = %d durable edges = %d, want 2 and 20", s.Checkpoints, s.DurableEdges)
	}
	if s.Distills != 1 || s.DistillDropped != 3 {
		t.Fatalf("distills = %d dropped = %d, want 1 and 3", s.Distills, s.DistillDropped)
	}
	// A store-less campaign reports a clean zero audit trail.
	plain := Summarize(mustRead(t, synth(nil, evs[:1])))
	if plain.Checkpoints != 0 || plain.Distills != 0 || plain.DurableEdges != 0 {
		t.Fatalf("phantom persistence counters: %+v", plain)
	}
}

// TestSummarizeBudgets checks the TimeBudget reconstruction: per-shard buckets,
// the invariant cross-check (Drift), merged TimeBy, and tier attribution.
func TestSummarizeBudgets(t *testing.T) {
	hdr := trace.Header{OS: "freertos", Board: "b", Seed: 1, Shards: 1, EmulShards: 1}
	evs := []trace.Event{
		{Kind: trace.ExecEnd, Shard: 0, At: time.Second},
		{Kind: trace.ExecEnd, Shard: 1, At: time.Second}, // emul tier (EmulStart==1)
		{Kind: trace.RestoreBegin, Shard: 0, Reason: "crash", At: 2 * time.Second},
		{Kind: trace.SyncEpoch, Shard: 0, Edges: 40, At: 3 * time.Second},
		{Kind: trace.SyncEpoch, Shard: 1, Edges: 70, At: 3 * time.Second},
		// Shard 0: consistent budget (sums to duration).
		{Kind: trace.TimeBudget, Shard: 0, Reason: "executing", Dur: 6 * time.Second, At: 10 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "restoring", Dur: 4 * time.Second, At: 10 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "restoring-delta", Dur: 3 * time.Second, At: 10 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "restoring-full", Dur: time.Second, At: 10 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "duration", Dur: 10 * time.Second, At: 10 * time.Second},
		// Shard 1: drifting budget (9s accounted vs 10s duration).
		{Kind: trace.TimeBudget, Shard: 1, Reason: "executing", Dur: 9 * time.Second, At: 10 * time.Second},
		{Kind: trace.TimeBudget, Shard: 1, Reason: "duration", Dur: 10 * time.Second, At: 10 * time.Second},
	}
	s := Summarize(mustRead(t, synth(&hdr, evs)))
	if s.Shards != 2 || s.Execs != 2 || s.HWExecs != 1 || s.EmExecs != 1 {
		t.Fatalf("totals: %+v", s)
	}
	if s.Edges != 40 || s.EmEdges != 70 {
		t.Fatalf("per-tier edges: hw=%d emul=%d", s.Edges, s.EmEdges)
	}
	if s.Restores != 1 || s.ByReason["crash"] != 1 {
		t.Fatalf("restores: %d %v", s.Restores, s.ByReason)
	}
	if len(s.Budgets) != 2 {
		t.Fatalf("budgets: %+v", s.Budgets)
	}
	b0, b1 := s.Budgets[0], s.Budgets[1]
	if b0.Shard != 0 || b0.Drift != 0 || b0.TimeBy.Executing != 6*time.Second {
		t.Fatalf("shard 0 budget: %+v", b0)
	}
	if b0.TimeBy.RestoringDelta != 3*time.Second || b0.TimeBy.RestoringFull != time.Second {
		t.Fatalf("shard 0 restore split: %+v", b0.TimeBy)
	}
	if b1.Drift != -time.Second {
		t.Fatalf("shard 1 drift: %v", b1.Drift)
	}
	if s.TimeBy.Executing != 15*time.Second || s.Duration != 10*time.Second {
		t.Fatalf("merged budget: %+v dur %v", s.TimeBy, s.Duration)
	}
}

func TestCovPlateau(t *testing.T) {
	hdr := trace.Header{OS: "freertos", Board: "b", Seed: 1, Shards: 1, EmulShards: 1}
	evs := []trace.Event{
		{Kind: trace.CovGain, Shard: 0, Edges: 10, At: 1 * time.Second},
		{Kind: trace.CovGain, Shard: 0, Edges: 5, At: 2 * time.Second},
		{Kind: trace.CovGain, Shard: 1, Edges: 99, At: 3 * time.Second}, // emul: excluded
		{Kind: trace.CovGain, Shard: 0, Edges: 1, At: 9 * time.Second},
		{Kind: trace.ExecEnd, Shard: 0, At: 12 * time.Second},
	}
	pts, plateau := Cov(mustRead(t, synth(&hdr, evs)))
	if len(pts) != 3 {
		t.Fatalf("series: %+v", pts)
	}
	if pts[2].Edges != 16 || pts[2].At != 9*time.Second {
		t.Fatalf("cumulative series wrong: %+v", pts)
	}
	// Longest zero-gain window: 2s..9s.
	if plateau.Start != 2*time.Second || plateau.End != 9*time.Second {
		t.Fatalf("plateau: %+v", plateau)
	}
}

func TestBottlenecksRankWorstFirst(t *testing.T) {
	hdr := trace.Header{OS: "freertos", Board: "b", Seed: 1, Shards: 1}
	evs := []trace.Event{
		{Kind: trace.TimeBudget, Shard: 0, Reason: "executing", Dur: 2 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "restoring", Dur: 7 * time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "sync-barrier", Dur: time.Second},
		{Kind: trace.TimeBudget, Shard: 0, Reason: "duration", Dur: 10 * time.Second},
	}
	sinks := Bottlenecks(mustRead(t, synth(&hdr, evs)))
	if len(sinks) == 0 || sinks[0].Category != "restoring" || sinks[0].Share != 0.7 {
		t.Fatalf("ranking: %+v", sinks)
	}
	if sinks[1].Category != "executing" || sinks[0].Tier != "" {
		t.Fatalf("ranking tail / untiered tier label: %+v", sinks)
	}

	// Old journals without TimeBudget records fall back to end-event durations.
	old := []trace.Event{
		{Kind: trace.RestoreEnd, Shard: 0, Reason: "crash", Dur: 3 * time.Second},
		{Kind: trace.TriageEnd, Shard: 0, Dur: 5 * time.Second},
	}
	sinks = Bottlenecks(mustRead(t, synth(nil, old)))
	if len(sinks) != 2 || sinks[0].Category != "triaging" || sinks[1].Dur != 3*time.Second {
		t.Fatalf("fallback ranking: %+v", sinks)
	}
}

func TestDivergences(t *testing.T) {
	evs := []trace.Event{
		{Kind: trace.TierConfirm, Shard: 0, Exec: 3, Reason: "cov", Edges: 4, At: time.Second},
		{Kind: trace.TierDiverge, Shard: 1, Exec: 4, Reason: "emul-only-cov", At: 2 * time.Second},
	}
	vs := Divergences(mustRead(t, synth(nil, evs)))
	if len(vs) != 2 {
		t.Fatalf("verdicts: %+v", vs)
	}
	if !vs[0].Confirmed || vs[0].HWShard != 0 || vs[0].EmulShard != 3 || vs[0].Edges != 4 {
		t.Fatalf("confirm verdict: %+v", vs[0])
	}
	if vs[1].Confirmed || vs[1].Reason != "emul-only-cov" {
		t.Fatalf("diverge verdict: %+v", vs[1])
	}
}

func mustRead(t *testing.T, raw []byte) *Journal {
	t.Helper()
	j, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return j
}
