// Package targets is the registry of supported embedded OS builds.
package targets

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/os/freertos"
	"github.com/eof-fuzz/eof/internal/os/nuttx"
	"github.com/eof-fuzz/eof/internal/os/pokos"
	"github.com/eof-fuzz/eof/internal/os/rtthread"
	"github.com/eof-fuzz/eof/internal/os/zephyr"
	"github.com/eof-fuzz/eof/internal/osinfo"
)

// All returns every supported OS build, in the paper's evaluation order.
func All() []*osinfo.Info {
	return []*osinfo.Info{
		freertos.Info(),
		rtthread.Info(),
		nuttx.Info(),
		zephyr.Info(),
		pokos.Info(),
	}
}

// ByName resolves an OS build by its canonical name.
func ByName(name string) (*osinfo.Info, error) {
	for _, i := range All() {
		if i.Name == name {
			return i, nil
		}
	}
	return nil, fmt.Errorf("targets: unknown OS %q", name)
}

// Names returns the canonical OS names.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, t := range all {
		out[i] = t.Name
	}
	return out
}
