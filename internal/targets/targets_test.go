package targets

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/boards"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("targets: %d", len(all))
	}
	for _, info := range all {
		if info.Name == "" || info.Display == "" || info.Version == "" {
			t.Errorf("incomplete info: %+v", info)
		}
		if len(info.APINames) < 15 {
			t.Errorf("%s: only %d APIs", info.Name, len(info.APINames))
		}
		if len(info.Headers) == 0 || len(info.ExceptionSyms) == 0 {
			t.Errorf("%s: missing headers or exception symbols", info.Name)
		}
		if _, err := info.PartTable(); err != nil {
			t.Errorf("%s: partition table: %v", info.Name, err)
		}
		got, err := ByName(info.Name)
		if err != nil || got.Name != info.Name {
			t.Errorf("ByName(%s): %v", info.Name, err)
		}
	}
	if _, err := ByName("vxworks"); err == nil {
		t.Fatal("unknown target resolved")
	}
}

// TestEveryTargetBootsEverywhere is the adaptability smoke check: every OS
// build must boot on every board model (the peripheral differences change
// behaviour, not bootability).
func TestEveryTargetBootsEverywhere(t *testing.T) {
	for _, info := range All() {
		for _, spec := range boards.All() {
			syms, err := info.SymbolTable(spec)
			if err != nil {
				t.Errorf("%s on %s: %v", info.Name, spec.Name, err)
				continue
			}
			if syms.TotalBlocks() < 100 {
				t.Errorf("%s on %s: only %d blocks", info.Name, spec.Name, syms.TotalBlocks())
			}
			// Monitor symbols must exist in the build.
			for _, s := range info.ExceptionSyms {
				if syms.Lookup(s) == nil {
					t.Errorf("%s: exception symbol %s missing", info.Name, s)
				}
			}
		}
	}
}

// TestImageSizesPlausible pins the §5.5.1 baseline sizes near the paper's.
func TestImageSizesPlausible(t *testing.T) {
	want := map[string][2]float64{ // MB plain, tolerance
		"nuttx":    {3.36, 0.15},
		"rtthread": {2.53, 0.15},
		"zephyr":   {0.803, 0.05},
		"freertos": {2.825, 0.15},
	}
	for name, w := range want {
		info, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		imgs, err := info.BuildImages(boards.STM32H745(), false)
		if err != nil {
			t.Fatal(err)
		}
		mb := float64(len(imgs.Kernel)) / 1e6
		if mb < w[0]-w[1] || mb > w[0]+w[1] {
			t.Errorf("%s plain image %.3f MB, want %.3f±%.2f", name, mb, w[0], w[1])
		}
	}
}
