// Package osinfo defines the host-visible description of a target embedded
// OS build: how to construct its firmware, its partition layout, the symbols
// its monitors need, the C headers its API specifications are extracted
// from, and the parameters of its image-size model. This is the information
// a real deployment gets from the target's source tree, build configuration
// and ELF file.
package osinfo

import (
	"fmt"
	"strings"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/flash"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// Header is one C header (or doc file) fed to the specification generator.
type Header struct {
	Path string
	Text string
}

// Info describes one supported embedded OS.
type Info struct {
	// Name is the canonical lower-case identifier ("freertos").
	Name string
	// Display is the human name used in reports ("FreeRTOS").
	Display string
	// Version matches the paper's evaluated revision.
	Version string

	// PartTableText is the build-configuration partition table (the
	// KConfig-supplied file of Algorithm 1).
	PartTableText string

	// Builder constructs the OS+agent firmware on a booted environment.
	Builder board.Builder

	// ExceptionSyms are the OS-specific exception-entry symbols where the
	// exception monitor plants breakpoints (panic_handler, ...).
	ExceptionSyms []string

	// Headers feed the specification generator.
	Headers []Header

	// APINames is the agent dispatch table order; wire API indices resolve
	// against it.
	APINames []string

	// Image-size model: the image's code section is
	// BaseCodeBytes + blocks*(BytesPerBlock [+ InstrBytesPerBlock]).
	BaseCodeBytes      int
	BytesPerBlock      int
	InstrBytesPerBlock int

	// BuildID seeds the deterministic image contents.
	BuildID uint64

	// Dictionary holds example payloads lifted from the target's unit tests
	// and documentation (the paper prompts the LLM with unit-test examples;
	// these tokens seed buffer-argument generation the same way).
	Dictionary []string
}

// APIIndex returns the dispatch index for an API name, or -1.
func (i *Info) APIIndex(name string) int {
	for idx, n := range i.APINames {
		if n == name {
			return idx
		}
	}
	return -1
}

// PartTable parses the build configuration's partition table.
func (i *Info) PartTable() (*flash.Table, error) {
	return flash.ParseTable(i.PartTableText)
}

// Images holds the serialized flash images for one build variant.
type Images struct {
	Boot        []byte
	Kernel      []byte
	KernelImage *flash.Image
	CodeBlocks  int
}

// BuildImages produces the flash images for the OS on the given board. The
// code size comes from a dry-run boot that counts the build's basic blocks —
// the moral equivalent of reading section sizes out of the linked ELF — so
// instrumented and plain images differ in size exactly as §5.5.1 measures.
func (i *Info) BuildImages(spec *board.Spec, instrumented bool) (*Images, error) {
	blocks, err := i.countBlocks(spec)
	if err != nil {
		return nil, err
	}
	per := i.BytesPerBlock
	if instrumented {
		per += i.InstrBytesPerBlock
	}
	codeSize := i.BaseCodeBytes + blocks*per
	kimg := &flash.Image{
		Magic:        flash.MagicKernel,
		OS:           i.Name,
		BuildID:      i.BuildID,
		Instrumented: instrumented,
		CodeSize:     uint32(codeSize),
		Entry:        spec.FlashBase + 0x1000,
	}
	bimg := &flash.Image{
		Magic:    flash.MagicBoot,
		OS:       i.Name + "-boot",
		BuildID:  i.BuildID ^ 0xB007,
		CodeSize: 16 * 1024,
		Entry:    spec.FlashBase,
	}
	return &Images{
		Boot:        bimg.Serialize(),
		Kernel:      kimg.Serialize(),
		KernelImage: kimg,
		CodeBlocks:  blocks,
	}, nil
}

// countBlocks boots a scratch board with a minimal placeholder image purely
// to enumerate the build's basic blocks.
func (i *Info) countBlocks(spec *board.Spec) (int, error) {
	t, err := i.SymbolTable(spec)
	if err != nil {
		return 0, err
	}
	return t.TotalBlocks(), nil
}

// SymbolTable returns the build's symbol table for the given board, obtained
// from a dry-run construction — the host-side equivalent of reading symbols
// out of the linked ELF. Monitors use it to plant breakpoints by name.
func (i *Info) SymbolTable(spec *board.Spec) (*sym.Table, error) {
	table, err := i.PartTable()
	if err != nil {
		return nil, err
	}
	b, err := board.New(spec, table, i.Builder, new(vtime.Clock))
	if err != nil {
		return nil, err
	}
	kimg := &flash.Image{Magic: flash.MagicKernel, OS: i.Name, BuildID: i.BuildID, CodeSize: 64}
	bimg := &flash.Image{Magic: flash.MagicBoot, OS: i.Name, BuildID: i.BuildID, CodeSize: 64}
	if err := b.Provision("bootloader", bimg.Serialize()); err != nil {
		return nil, err
	}
	if err := b.Provision("kernel", kimg.Serialize()); err != nil {
		return nil, err
	}
	if err := b.Boot(); err != nil {
		return nil, fmt.Errorf("osinfo: dry-run boot of %s: %w", i.Name, err)
	}
	syms := b.Env().Syms
	b.Core().Kill()
	return syms, nil
}

// WithCovModules clones the build description with a builder that confines
// coverage instrumentation to functions whose source file starts with one of
// the given prefixes — the compile-time "instrument only these modules"
// restriction of the paper's application-level evaluation (Table 4).
func WithCovModules(info *Info, modules []string) *Info {
	clone := *info
	orig := info.Builder
	clone.Builder = func(env *board.Env) (board.Firmware, error) {
		fw, err := orig(env)
		if err == nil && env.Cov != nil {
			syms := env.Syms
			env.Cov.SetFilter(func(pc uint64) bool {
				f := syms.Find(pc)
				if f == nil {
					return false
				}
				for _, m := range modules {
					if strings.HasPrefix(f.File, m) {
						return true
					}
				}
				return false
			})
		}
		return fw, err
	}
	return &clone
}
