// Package flash implements the on-board NOR-flash device, partition tables,
// and the firmware image format. Flash semantics matter to the fuzzer: a bug
// that scribbles over the kernel partition leaves an image whose checksum no
// longer validates, so the board fails to boot until the host reflashes every
// partition over the debug link (the paper's state-restoration procedure).
package flash

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Erased is the value of an erased flash byte (NOR convention: all ones).
const Erased = 0xFF

// Device is a sectored NOR flash. Program can only clear bits; setting bits
// back requires erasing the whole covering sector, as on real parts.
type Device struct {
	sectorSize int
	data       []byte
	// eraseCount tracks per-sector erase cycles, useful for wear statistics
	// in experiments and for tests asserting that reflash actually erased.
	eraseCount []int
	// dirty marks sectors whose contents may have changed since the last
	// ClearDirty — every erase, program and corrupting write sets it. The
	// snapshot/delta restoration path diffs against this bitmap instead of
	// re-shipping whole partitions.
	dirty []bool
}

// NewDevice creates an erased flash of size bytes with the given sector size.
func NewDevice(size, sectorSize int) *Device {
	if size <= 0 || sectorSize <= 0 || size%sectorSize != 0 {
		panic(fmt.Sprintf("flash: invalid geometry size=%d sector=%d", size, sectorSize))
	}
	d := &Device{
		sectorSize: sectorSize,
		data:       make([]byte, size),
		eraseCount: make([]int, size/sectorSize),
		dirty:      make([]bool, size/sectorSize),
	}
	for i := range d.data {
		d.data[i] = Erased
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return len(d.data) }

// SectorSize returns the erase granularity in bytes.
func (d *Device) SectorSize() int { return d.sectorSize }

// Sectors returns the number of sectors.
func (d *Device) Sectors() int { return len(d.data) / d.sectorSize }

// EraseCount returns how many times sector i has been erased.
func (d *Device) EraseCount(i int) int { return d.eraseCount[i] }

// Bytes exposes the raw array so the board can map it as a memory region.
func (d *Device) Bytes() []byte { return d.data }

// Erase resets sector i to the erased state.
func (d *Device) Erase(i int) error {
	if i < 0 || i >= d.Sectors() {
		return fmt.Errorf("flash: erase of sector %d outside device (%d sectors)", i, d.Sectors())
	}
	base := i * d.sectorSize
	for j := base; j < base+d.sectorSize; j++ {
		d.data[j] = Erased
	}
	d.eraseCount[i]++
	d.dirty[i] = true
	return nil
}

// EraseRange erases every sector overlapping [off, off+n).
func (d *Device) EraseRange(off, n int) error {
	if off < 0 || n < 0 || off+n > len(d.data) {
		return fmt.Errorf("flash: erase range [%#x,%#x) outside device", off, off+n)
	}
	if n == 0 {
		return nil
	}
	for s := off / d.sectorSize; s <= (off+n-1)/d.sectorSize; s++ {
		if err := d.Erase(s); err != nil {
			return err
		}
	}
	return nil
}

// Program writes data at off with NOR semantics: each byte is ANDed with the
// current contents, so bits can only transition from 1 to 0.
func (d *Device) Program(off int, data []byte) error {
	if off < 0 || off+len(data) > len(d.data) {
		return fmt.Errorf("flash: program [%#x,%#x) outside device", off, off+len(data))
	}
	for i, b := range data {
		d.data[off+i] &= b
	}
	if len(data) > 0 {
		d.markDirty(off, len(data))
	}
	return nil
}

// Read copies n bytes starting at off.
func (d *Device) Read(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off+n > len(d.data) {
		return nil, fmt.Errorf("flash: read [%#x,%#x) outside device", off, off+n)
	}
	out := make([]byte, n)
	copy(out, d.data[off:off+n])
	return out, nil
}

// WriteImage erases the covering sectors and programs data at off; this is
// the operation the debug client's vFlash commands map to.
func (d *Device) WriteImage(off int, data []byte) error {
	if err := d.EraseRange(off, len(data)); err != nil {
		return err
	}
	return d.Program(off, data)
}

// Corrupt flips or clears bytes in [off, off+n) without erase, modelling a
// runaway kernel write into flash-mapped space. It ignores out-of-range
// spans silently truncated to the device, because buggy writes do that too.
func (d *Device) Corrupt(off, n int, pattern byte) {
	if off < 0 {
		off = 0
	}
	written := 0
	for i := 0; i < n && off+i < len(d.data); i++ {
		d.data[off+i] &= pattern
		written++
	}
	if written > 0 {
		d.markDirty(off, written)
	}
}

// markDirty flags every sector overlapping [off, off+n).
func (d *Device) markDirty(off, n int) {
	for s := off / d.sectorSize; s <= (off+n-1)/d.sectorSize && s < len(d.dirty); s++ {
		d.dirty[s] = true
	}
}

// Dirty reports whether sector i has been touched since the last ClearDirty.
func (d *Device) Dirty(i int) bool { return d.dirty[i] }

// DirtySectors returns the indices of every sector touched since the last
// ClearDirty, in ascending order.
func (d *Device) DirtySectors() []int {
	var out []int
	for i, dt := range d.dirty {
		if dt {
			out = append(out, i)
		}
	}
	return out
}

// ClearDirty resets the dirty bitmap — the snapshot point the next
// DirtySectors call diffs against.
func (d *Device) ClearDirty() {
	for i := range d.dirty {
		d.dirty[i] = false
	}
}

// MarkAllDirty flags every sector, forcing the next delta restore to treat
// the whole device as changed (used when tracking validity is lost).
func (d *Device) MarkAllDirty() {
	for i := range d.dirty {
		d.dirty[i] = true
	}
}

// Partition is one named span of the flash device.
type Partition struct {
	Name   string
	Type   string // "app" or "data"
	Offset int
	Size   int
}

// Table is an ordered partition table as extracted from the target's build
// configuration (the paper's GetPartitionTable(KConfig)).
type Table struct {
	Parts []Partition
}

// Lookup returns the named partition, or nil.
func (t *Table) Lookup(name string) *Partition {
	for i := range t.Parts {
		if t.Parts[i].Name == name {
			return &t.Parts[i]
		}
	}
	return nil
}

// Validate checks that partitions are in-bounds and non-overlapping on dev.
func (t *Table) Validate(dev *Device) error {
	for i, p := range t.Parts {
		if p.Offset < 0 || p.Size <= 0 || p.Offset+p.Size > dev.Size() {
			return fmt.Errorf("partition %q [%#x,%#x) outside flash (%#x bytes)",
				p.Name, p.Offset, p.Offset+p.Size, dev.Size())
		}
		if p.Offset%dev.SectorSize() != 0 {
			return fmt.Errorf("partition %q offset %#x not sector-aligned", p.Name, p.Offset)
		}
		for _, q := range t.Parts[:i] {
			if p.Offset < q.Offset+q.Size && q.Offset < p.Offset+p.Size {
				return fmt.Errorf("partition %q overlaps %q", p.Name, q.Name)
			}
		}
	}
	return nil
}

// ParseTable parses the CSV-ish partition description used by embedded build
// systems (name, type, offset, size per line; '#' comments; hex or decimal).
func ParseTable(text string) (*Table, error) {
	t := &Table{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("partition table line %d: want 4 fields, got %d", ln+1, len(fields))
		}
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		off, err := parseNum(fields[2])
		if err != nil {
			return nil, fmt.Errorf("partition table line %d: bad offset %q: %v", ln+1, fields[2], err)
		}
		size, err := parseNum(fields[3])
		if err != nil {
			return nil, fmt.Errorf("partition table line %d: bad size %q: %v", ln+1, fields[3], err)
		}
		if fields[0] == "" {
			return nil, fmt.Errorf("partition table line %d: empty name", ln+1)
		}
		t.Parts = append(t.Parts, Partition{Name: fields[0], Type: fields[1], Offset: int(off), Size: int(size)})
	}
	if len(t.Parts) == 0 {
		return nil, fmt.Errorf("partition table: no partitions")
	}
	return t, nil
}

// Format renders the table back into the textual form ParseTable accepts.
func (t *Table) Format() string {
	var b strings.Builder
	b.WriteString("# name, type, offset, size\n")
	for _, p := range t.Parts {
		fmt.Fprintf(&b, "%s, %s, %#x, %#x\n", p.Name, p.Type, p.Offset, p.Size)
	}
	return b.String()
}

func parseNum(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// CRC is the checksum used by the image format and boot validation.
func CRC(data []byte) uint32 { return crc32.ChecksumIEEE(data) }
