package flash

import (
	"encoding/binary"
	"fmt"
)

// Image magics, one per partition role.
const (
	MagicBoot   = 0x45304642 // "EOFB"
	MagicKernel = 0x45304B42 // "EOFK"
	MagicData   = 0x45304442 // "EOFD"
)

// Image is the firmware image format flashed into a partition. Boot parses
// and validates it; the restoration module regenerates and reflashes it. The
// payload is a deterministic pseudo-code section whose size models the real
// binary size, so instrumentation overhead (paper §5.5.1) is measurable as an
// actual image-size difference.
type Image struct {
	Magic        uint32
	OS           string
	BuildID      uint64
	Instrumented bool
	CodeSize     uint32 // pseudo-code section size in bytes
	Entry        uint64 // entry point address for the boot report
}

const imageHeaderFixed = 4 + 2 + 8 + 1 + 4 + 8 // magic, oslen, buildid, flags, codesize, entry

// Serialize renders the image: header, OS name, code section, trailing CRC32
// over everything before the CRC.
func (im *Image) Serialize() []byte {
	if len(im.OS) > 0xFFFF {
		panic("flash: OS name too long")
	}
	n := imageHeaderFixed + len(im.OS) + int(im.CodeSize) + 4
	out := make([]byte, 0, n)
	var h [imageHeaderFixed]byte
	binary.LittleEndian.PutUint32(h[0:], im.Magic)
	binary.LittleEndian.PutUint16(h[4:], uint16(len(im.OS)))
	binary.LittleEndian.PutUint64(h[6:], im.BuildID)
	if im.Instrumented {
		h[14] = 1
	}
	binary.LittleEndian.PutUint32(h[15:], im.CodeSize)
	binary.LittleEndian.PutUint64(h[19:], im.Entry)
	out = append(out, h[:]...)
	out = append(out, im.OS...)
	out = append(out, pseudoCode(im.BuildID, int(im.CodeSize))...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], CRC(out))
	out = append(out, crc[:]...)
	return out
}

// ParseImage validates and decodes an image from raw partition bytes. The
// slice may be longer than the image (partitions usually are); validation
// covers exactly the serialized length.
func ParseImage(raw []byte) (*Image, error) {
	if len(raw) < imageHeaderFixed+4 {
		return nil, fmt.Errorf("image: truncated header (%d bytes)", len(raw))
	}
	im := &Image{
		Magic:   binary.LittleEndian.Uint32(raw[0:]),
		BuildID: binary.LittleEndian.Uint64(raw[6:]),
	}
	switch im.Magic {
	case MagicBoot, MagicKernel, MagicData:
	default:
		return nil, fmt.Errorf("image: bad magic %#x", im.Magic)
	}
	osLen := int(binary.LittleEndian.Uint16(raw[4:]))
	im.Instrumented = raw[14] != 0
	im.CodeSize = binary.LittleEndian.Uint32(raw[15:])
	im.Entry = binary.LittleEndian.Uint64(raw[19:])
	total := imageHeaderFixed + osLen + int(im.CodeSize) + 4
	if total > len(raw) {
		return nil, fmt.Errorf("image: declared size %d exceeds partition %d", total, len(raw))
	}
	im.OS = string(raw[imageHeaderFixed : imageHeaderFixed+osLen])
	body := raw[:total-4]
	want := binary.LittleEndian.Uint32(raw[total-4:])
	if got := CRC(body); got != want {
		return nil, fmt.Errorf("image: CRC mismatch: got %#x want %#x", got, want)
	}
	return im, nil
}

// TotalSize returns the serialized length of the image in bytes.
func (im *Image) TotalSize() int {
	return imageHeaderFixed + len(im.OS) + int(im.CodeSize) + 4
}

// pseudoCode generates the deterministic code-section bytes: an xorshift
// stream seeded by the build ID, so reflashing reproduces the identical image
// and any in-place corruption is detectable by CRC.
func pseudoCode(seed uint64, n int) []byte {
	out := make([]byte, n)
	x := seed | 1
	for i := 0; i < n; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(x >> (8 * j))
		}
	}
	return out
}
