package flash

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEraseProgramSemantics(t *testing.T) {
	d := NewDevice(4096, 1024)
	if got, _ := d.Read(0, 2); got[0] != Erased || got[1] != Erased {
		t.Fatal("new device not erased")
	}
	if err := d.Program(0, []byte{0xF0}); err != nil {
		t.Fatal(err)
	}
	// NOR: programming can only clear bits.
	if err := d.Program(0, []byte{0x0F}); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Read(0, 1)
	if got[0] != 0x00 {
		t.Fatalf("AND semantics broken: %#x", got[0])
	}
	if err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Read(0, 1)
	if got[0] != Erased {
		t.Fatalf("erase failed: %#x", got[0])
	}
	if d.EraseCount(0) != 1 {
		t.Fatalf("erase count %d", d.EraseCount(0))
	}
}

func TestEraseRangeCoversSectors(t *testing.T) {
	d := NewDevice(4096, 1024)
	d.Program(1000, []byte{0})
	d.Program(1100, []byte{0})
	if err := d.EraseRange(1000, 200); err != nil {
		t.Fatal(err)
	}
	// Spans sectors 0 and 1.
	if d.EraseCount(0) != 1 || d.EraseCount(1) != 1 {
		t.Fatalf("erase counts %d,%d", d.EraseCount(0), d.EraseCount(1))
	}
	if err := d.EraseRange(0, 0); err != nil {
		t.Fatal("zero-length erase should be a no-op")
	}
}

func TestWriteImageRoundTrip(t *testing.T) {
	d := NewDevice(8192, 1024)
	data := []byte("hello firmware")
	// Pre-dirty the area so WriteImage must erase.
	d.Program(100, []byte{0, 0, 0})
	if err := d.WriteImage(0, data); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Read(0, len(data))
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestBoundsErrors(t *testing.T) {
	d := NewDevice(1024, 1024)
	if err := d.Program(1020, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("overflow program accepted")
	}
	if _, err := d.Read(-1, 4); err == nil {
		t.Fatal("negative read accepted")
	}
	if err := d.Erase(1); err == nil {
		t.Fatal("bad sector erase accepted")
	}
}

func TestPartitionTableParse(t *testing.T) {
	text := `# name, type, offset, size
bootloader, app, 0x0, 0x8000
kernel, app, 0x8000, 0x40000
nvs, data, 0x48000, 0x4000
`
	tab, err := ParseTable(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Parts) != 3 {
		t.Fatalf("%d parts", len(tab.Parts))
	}
	k := tab.Lookup("kernel")
	if k == nil || k.Offset != 0x8000 || k.Size != 0x40000 {
		t.Fatalf("kernel = %+v", k)
	}
	if tab.Lookup("missing") != nil {
		t.Fatal("found missing partition")
	}
	// Round-trip through Format.
	tab2, err := ParseTable(tab.Format())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Parts) != 3 || *tab2.Lookup("nvs") != *tab.Lookup("nvs") {
		t.Fatal("format round-trip mismatch")
	}
}

func TestPartitionTableErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"a, b, c\n",
		"x, app, zz, 0x100\n",
		"x, app, 0x0, zz\n",
		", app, 0x0, 0x100\n",
	} {
		if _, err := ParseTable(bad); err == nil {
			t.Errorf("ParseTable(%q) accepted", bad)
		}
	}
}

func TestPartitionValidate(t *testing.T) {
	d := NewDevice(64*1024, 4096)
	tab := &Table{Parts: []Partition{
		{Name: "a", Type: "app", Offset: 0, Size: 0x4000},
		{Name: "b", Type: "app", Offset: 0x4000, Size: 0x4000},
	}}
	if err := tab.Validate(d); err != nil {
		t.Fatal(err)
	}
	bad := &Table{Parts: []Partition{
		{Name: "a", Type: "app", Offset: 0, Size: 0x5000},
		{Name: "b", Type: "app", Offset: 0x4000, Size: 0x4000},
	}}
	if err := bad.Validate(d); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlap not caught: %v", err)
	}
	unaligned := &Table{Parts: []Partition{{Name: "a", Type: "app", Offset: 100, Size: 0x1000}}}
	if err := unaligned.Validate(d); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	outside := &Table{Parts: []Partition{{Name: "a", Type: "app", Offset: 0, Size: 0x8000000}}}
	if err := outside.Validate(d); err == nil {
		t.Fatal("oversized partition accepted")
	}
}

func TestImageSerializeParse(t *testing.T) {
	im := &Image{Magic: MagicKernel, OS: "freertos", BuildID: 0xABCD, Instrumented: true, CodeSize: 2048, Entry: 0x08001000}
	raw := im.Serialize()
	if len(raw) != im.TotalSize() {
		t.Fatalf("serialized %d, TotalSize %d", len(raw), im.TotalSize())
	}
	// Parse from a larger partition buffer.
	part := make([]byte, len(raw)+512)
	for i := range part {
		part[i] = Erased
	}
	copy(part, raw)
	got, err := ParseImage(part)
	if err != nil {
		t.Fatal(err)
	}
	if got.OS != "freertos" || got.BuildID != 0xABCD || !got.Instrumented || got.CodeSize != 2048 || got.Entry != 0x08001000 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestImageCorruptionDetected(t *testing.T) {
	im := &Image{Magic: MagicKernel, OS: "zephyr", BuildID: 7, CodeSize: 1024}
	raw := im.Serialize()
	raw[40] ^= 0xFF
	if _, err := ParseImage(raw); err == nil {
		t.Fatal("corrupt image accepted")
	}
	// Bad magic.
	raw2 := im.Serialize()
	raw2[0] = 0
	if _, err := ParseImage(raw2); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated.
	if _, err := ParseImage(im.Serialize()[:10]); err == nil {
		t.Fatal("truncated image accepted")
	}
}

func TestImageDeterministic(t *testing.T) {
	a := (&Image{Magic: MagicKernel, OS: "nuttx", BuildID: 42, CodeSize: 4096}).Serialize()
	b := (&Image{Magic: MagicKernel, OS: "nuttx", BuildID: 42, CodeSize: 4096}).Serialize()
	if !bytes.Equal(a, b) {
		t.Fatal("image serialization not deterministic")
	}
	c := (&Image{Magic: MagicKernel, OS: "nuttx", BuildID: 43, CodeSize: 4096}).Serialize()
	if bytes.Equal(a, c) {
		t.Fatal("different build IDs produced identical images")
	}
}

func TestImagePropertyRoundTrip(t *testing.T) {
	f := func(build uint64, size uint16, instr bool) bool {
		im := &Image{Magic: MagicBoot, OS: "os", BuildID: build, Instrumented: instr, CodeSize: uint32(size)}
		got, err := ParseImage(im.Serialize())
		return err == nil && got.BuildID == build && got.Instrumented == instr && got.CodeSize == uint32(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrupt(t *testing.T) {
	d := NewDevice(2048, 1024)
	img := (&Image{Magic: MagicKernel, OS: "x", BuildID: 1, CodeSize: 256}).Serialize()
	if err := d.WriteImage(0, img); err != nil {
		t.Fatal(err)
	}
	d.Corrupt(20, 8, 0x00)
	raw, _ := d.Read(0, len(img))
	if _, err := ParseImage(raw); err == nil {
		t.Fatal("CRC did not catch corruption")
	}
}
