package bugdb

import (
	"fmt"
	"strings"
	"testing"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/cpu"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d bugs", len(all))
	}
	perOS := map[string]int{}
	confirmed := 0
	for i, b := range all {
		if b.ID != i+1 {
			t.Errorf("bug %d out of order", b.ID)
		}
		perOS[b.OS]++
		if b.Confirmed {
			confirmed++
		}
	}
	// Paper: 4 Zephyr, 8 RT-Thread, 1 FreeRTOS, 6 NuttX; 5 confirmed.
	want := map[string]int{"zephyr": 4, "rtthread": 8, "freertos": 1, "nuttx": 6}
	for os, n := range want {
		if perOS[os] != n {
			t.Errorf("%s: %d bugs, want %d", os, perOS[os], n)
		}
	}
	if confirmed != 5 {
		t.Errorf("confirmed: %d, want 5", confirmed)
	}
}

func TestMatchBySignature(t *testing.T) {
	rep := &core.BugReport{
		OS:  "rtthread",
		Sig: "BusFault@rt_event_send",
	}
	b, ok := Match(rep)
	if !ok || b.ID != 10 {
		t.Fatalf("match: %+v %v", b, ok)
	}
	// Wrong OS must not match.
	rep.OS = "zephyr"
	if _, ok := Match(rep); ok {
		t.Fatal("cross-OS match")
	}
}

func TestMatchByFrames(t *testing.T) {
	rep := &core.BugReport{
		OS:  "nuttx",
		Sig: "KernelPanic@something_else",
		Fault: &cpu.Fault{
			Frames: []cpu.Frame{{Func: "timer_create", File: "x.c", Line: 1}},
		},
	}
	b, ok := Match(rep)
	if !ok || b.ID != 18 {
		t.Fatalf("frame match: %+v %v", b, ok)
	}
}

func TestAssertMatches(t *testing.T) {
	rep := &core.BugReport{
		OS:  "rtthread",
		Sig: "assert:obj->type != RT_Object_Class_Null",
	}
	b, ok := Match(rep)
	if !ok || b.ID != 5 || b.Monitor != "log" {
		t.Fatalf("assert match: %+v %v", b, ok)
	}
}

func TestNoMatchForIncidental(t *testing.T) {
	rep := &core.BugReport{OS: "zephyr", Sig: "KernelPanic@sys_heap_free"}
	if _, ok := Match(rep); ok {
		t.Fatal("incidental crash matched the registry")
	}
}

func TestByOS(t *testing.T) {
	if got := ByOS("pokos"); len(got) != 0 {
		t.Fatalf("pokos bugs: %d", len(got))
	}
	if got := ByOS("nuttx"); len(got) != 6 {
		t.Fatalf("nuttx bugs: %d", len(got))
	}
}

// TestMatchEveryEntry table-drives Match over the full registry: every entry
// must resolve from its raw signature (with whitespace jitter on asserts, to
// pin the canonical comparison), exception entries must also resolve via the
// backtrace fallback, and the identical finding tagged with the wrong OS must
// be rejected.
func TestMatchEveryEntry(t *testing.T) {
	otherOS := map[string]string{
		"zephyr": "nuttx", "rtthread": "zephyr", "freertos": "rtthread", "nuttx": "rtthread",
	}
	for _, b := range All() {
		b := b
		t.Run(fmt.Sprintf("bug%02d_%s", b.ID, b.OS), func(t *testing.T) {
			rep := &core.BugReport{OS: b.OS}
			if expr, isAssert := strings.CutPrefix(b.sigNeedle, "assert:"); isAssert {
				rep.Monitor, rep.Kind = "log", "assert"
				rep.Sig = "assert: " + strings.Replace(expr, " ", "   ", 1)
			} else {
				rep.Monitor = "exception"
				rep.Sig = "BusFault" + b.sigNeedle
			}
			got, ok := Match(rep)
			if !ok || got.ID != b.ID {
				t.Fatalf("signature %q resolved to (ID %d, %v), want ID %d", rep.Sig, got.ID, ok, b.ID)
			}
			if rep.Monitor == "exception" {
				// Unhelpful raw signature, operation only in the backtrace.
				fb := &core.BugReport{OS: b.OS, Monitor: "exception", Sig: "HardFault@?",
					Fault: &cpu.Fault{Kind: cpu.FaultHard, Frames: []cpu.Frame{
						{Func: strings.TrimPrefix(b.sigNeedle, "@"), File: "x.c", Line: 1},
					}}}
				got, ok := Match(fb)
				if !ok || got.ID != b.ID {
					t.Fatalf("frame fallback resolved to (ID %d, %v), want ID %d", got.ID, ok, b.ID)
				}
			}
			wrong := *rep
			wrong.OS = otherOS[b.OS]
			if got, ok := Match(&wrong); ok {
				t.Fatalf("wrong-OS finding matched bug %d", got.ID)
			}
		})
	}
}
