// Package bugdb is the ground-truth registry of the paper's Table-2 bugs as
// planted in the OS personalities. Experiments match campaign findings
// against it to score detection without leaking trigger conditions to the
// fuzzer.
package bugdb

import (
	"strings"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/triage"
)

// Bug is one Table-2 entry.
type Bug struct {
	ID        int
	OS        string
	Scope     string
	Kind      string // "Kernel Panic" or "Kernel Assertion"
	Op        string // triggering operation, as the paper's Operations column
	Confirmed bool   // maintainer-confirmed in the paper
	// Monitor is the detector the paper attributes the find to.
	Monitor string
	// sigNeedle matches the campaign report's dedup signature.
	sigNeedle string
}

// All returns the 19 planted bugs in Table-2 order.
func All() []Bug {
	return []Bug{
		{1, "zephyr", "Heap", "Kernel Panic", "sys_heap_stress()", false, "exception", "@sys_heap_stress"},
		{2, "zephyr", "Kernel", "Kernel Panic", "z_impl_k_msgq_get()", true, "exception", "@z_impl_k_msgq_get"},
		{3, "zephyr", "JSON", "Kernel Panic", "json_obj_encode()", true, "exception", "@json_obj_encode"},
		{4, "zephyr", "KHeap", "Kernel Panic", "k_heap_init()", true, "exception", "@k_heap_init"},
		{5, "rtthread", "Kernel", "Kernel Assertion", "rt_object_get_type()", false, "log", "assert:obj->type != RT_Object_Class_Null"},
		{6, "rtthread", "RTService", "Kernel Panic", "rt_list_isempty()", false, "exception", "@rt_list_isempty"},
		{7, "rtthread", "Memory", "Kernel Panic", "rt_mp_alloc()", false, "exception", "@rt_mp_alloc"},
		{8, "rtthread", "Kernel", "Kernel Assertion", "rt_object_init()", false, "log", "assert:type != RT_Object_Class_Null"},
		{9, "rtthread", "Heap", "Kernel Panic", "_heap_lock()", false, "exception", "@_heap_lock"},
		{10, "rtthread", "IPC", "Kernel Panic", "rt_event_send()", false, "exception", "@rt_event_send"},
		{11, "rtthread", "Memory", "Kernel Panic", "rt_smem_setname()", true, "exception", "@rt_smem_setname"},
		{12, "rtthread", "Serial", "Kernel Panic", "rt_serial_write()", false, "exception", "@_serial_poll_tx"},
		{13, "freertos", "Kernel", "Kernel Panic", "load_partitions()", false, "exception", "@load_partitions"},
		{14, "nuttx", "Kernel", "Kernel Panic", "setenv()", true, "exception", "@setenv"},
		{15, "nuttx", "Libc", "Kernel Panic", "gettimeofday()", false, "exception", "@gettimeofday"},
		{16, "nuttx", "MQueue", "Kernel Panic", "nxmq_timedsend()", false, "exception", "@nxmq_timedsend"},
		{17, "nuttx", "Semaphore", "Kernel Assertion", "nxsem_trywait()", false, "log", "assert:sem->semcount >= SEM_VALUE_IRQ"},
		{18, "nuttx", "Timer", "Kernel Panic", "timer_create()", false, "exception", "@timer_create"},
		{19, "nuttx", "Libc", "Kernel Panic", "clock_getres()", false, "exception", "@clock_getres"},
	}
}

// Match resolves a campaign finding to a registered bug, or ok=false for
// incidental findings (generic invalid-free crashes, the extension driver
// defect, ...). Assert needles compare canonically (whitespace collapsed, the
// same normalization triage clustering uses), so formatting jitter in the raw
// signature cannot cost a detection in the score.
func Match(rep *core.BugReport) (Bug, bool) {
	for _, b := range All() {
		if b.OS != rep.OS {
			continue
		}
		if expr, isAssert := strings.CutPrefix(b.sigNeedle, "assert:"); isAssert {
			if strings.Contains(canonAssertSig(rep), "assert:"+triage.CanonAssert(expr)) {
				return b, true
			}
			continue
		}
		if strings.Contains(rep.Sig, b.sigNeedle) {
			return b, true
		}
		// Log-monitor reports carry the assert needle in the signature; a
		// fault report may still name the operation in its frames.
		if rep.Fault != nil {
			for _, fr := range rep.Fault.Frames {
				if "@"+fr.Func == b.sigNeedle {
					return b, true
				}
			}
		}
	}
	return Bug{}, false
}

// canonAssertSig returns the finding's assert signature in canonical form:
// the triage cluster when present, else the raw signature re-canonicalized.
func canonAssertSig(rep *core.BugReport) string {
	if strings.HasPrefix(rep.Cluster, "assert:") {
		return rep.Cluster
	}
	if expr, ok := strings.CutPrefix(rep.Sig, "assert:"); ok {
		return "assert:" + triage.CanonAssert(expr)
	}
	return rep.Sig
}

// ByOS returns the registered bugs for one OS.
func ByOS(os string) []Bug {
	var out []Bug
	for _, b := range All() {
		if b.OS == os {
			out = append(out, b)
		}
	}
	return out
}
