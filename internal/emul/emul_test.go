package emul

import (
	"testing"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/targets"
)

// openVM is the backend.OpenVM bring-up sequence, inlined because this
// in-package test cannot import backend (which imports emul).
func openVM(info *osinfo.Info, spec *board.Spec, instrumented bool) (*VM, error) {
	images, err := info.BuildImages(spec, instrumented)
	if err != nil {
		return nil, err
	}
	vm, err := NewVM(info, spec, images, nil)
	if err != nil {
		return nil, err
	}
	if err := vm.Reset(); err != nil {
		return nil, err
	}
	return vm, nil
}

func TestVMLifecycle(t *testing.T) {
	info, err := targets.ByName("freertos")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := openVM(info, boards.QEMUVirt(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()

	// Shared-memory access works while the guest runs.
	if err := vm.WriteMem(vm.Layout().MailboxIn, []byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	st, err := vm.Continue(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != cpu.StopBudget {
		t.Fatalf("stop: %+v", st)
	}
	// VM reset always restores a bootable image, even after corruption.
	vm.Board().Flash().Corrupt(0x20000, 64, 0)
	if err := vm.Reset(); err != nil {
		t.Fatalf("reset after corruption: %v", err)
	}
	if _, err := vm.Continue(10_000); err != nil {
		t.Fatal(err)
	}
	lines := vm.DrainUART()
	if len(lines) == 0 {
		t.Fatal("no boot banner after reset")
	}
}

func TestVMRejectsHardwareSpec(t *testing.T) {
	info, _ := targets.ByName("freertos")
	if _, err := openVM(info, boards.STM32H745(), true); err == nil {
		t.Fatal("hardware board accepted as a VM")
	}
}

func TestVMChargesSharedMemoryCost(t *testing.T) {
	info, _ := targets.ByName("pokos")
	vm, err := openVM(info, boards.QEMUVirt(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer vm.Close()
	before := vm.Clock.Now()
	if _, err := vm.ReadMem(vm.Layout().MailboxOut, 16); err != nil {
		t.Fatal(err)
	}
	if vm.Clock.Now() == before {
		t.Fatal("shared-memory read consumed no virtual time")
	}
}
