// Package emul is the QEMU-analogue execution environment that
// emulation-bound baselines (Tardis, Gustave) run on: the same OS image on
// the emulated board model, controlled through VM facilities rather than a
// debug probe — direct shared-memory access, cheap VM resets that restore
// the image from the host-side file (so a "bricked" flash can never strand
// the fuzzer), and a TCG-speed execution cost. What the VM cannot give is
// the hardware peripherals QEMU does not model; the OS code behind them is
// unreachable here.
package emul

import (
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// sharedMemOpCost is the hypervisor-mediated shared-memory access cost.
const sharedMemOpCost = 300 * time.Microsecond

// vmResetCost is a QEMU machine reset plus image reload.
const vmResetCost = 900 * time.Millisecond

// VM hosts one emulated target.
type VM struct {
	Info  *osinfo.Info
	Spec  *board.Spec
	Clock *vtime.Clock

	brd    *board.Board
	images *osinfo.Images
	lay    board.Layout
}

// New builds the VM: images, board, first boot. spec must be an emulated
// board model.
func New(info *osinfo.Info, spec *board.Spec, instrumented bool) (*VM, error) {
	if !spec.Emulated {
		return nil, fmt.Errorf("emul: board %s is not an emulated model", spec.Name)
	}
	images, err := info.BuildImages(spec, instrumented)
	if err != nil {
		return nil, err
	}
	table, err := info.PartTable()
	if err != nil {
		return nil, err
	}
	clock := &vtime.Clock{}
	brd, err := board.New(spec, table, info.Builder, clock)
	if err != nil {
		return nil, err
	}
	vm := &VM{Info: info, Spec: spec, Clock: clock, brd: brd, images: images, lay: board.LayoutFor(spec)}
	if err := vm.Reset(); err != nil {
		return nil, err
	}
	return vm, nil
}

// Layout exposes the shared RAM structure addresses.
func (v *VM) Layout() board.Layout { return v.lay }

// Board exposes the underlying board (tests only).
func (v *VM) Board() *board.Board { return v.brd }

// Reset reloads the pristine image and reboots — the VM-snapshot-style
// restoration emulator fuzzers enjoy; it cannot fail the way hardware
// reflash can.
func (v *VM) Reset() error {
	v.Clock.Advance(vmResetCost)
	if err := v.brd.Provision("bootloader", v.images.Boot); err != nil {
		return err
	}
	if err := v.brd.Provision("kernel", v.images.Kernel); err != nil {
		return err
	}
	if err := v.brd.Boot(); err != nil {
		return fmt.Errorf("emul: boot after reset: %w", err)
	}
	return nil
}

// Close kills the VM.
func (v *VM) Close() {
	if v.brd.State() == board.On {
		v.brd.Core().Kill()
	}
}

// ReadMem reads guest memory through the shared-memory mapping.
func (v *VM) ReadMem(addr uint64, n int) ([]byte, error) {
	v.Clock.Advance(sharedMemOpCost)
	if v.brd.State() != board.On {
		return nil, fmt.Errorf("emul: VM not running")
	}
	return v.brd.Mem().Read(addr, n)
}

// WriteMem writes guest memory through the shared-memory mapping.
func (v *VM) WriteMem(addr uint64, data []byte) error {
	v.Clock.Advance(sharedMemOpCost)
	if v.brd.State() != board.On {
		return fmt.Errorf("emul: VM not running")
	}
	return v.brd.Mem().Write(addr, data)
}

// Continue runs the guest for up to budget blocks and returns why it
// stopped. Emulator fuzzers have no breakpoints; they poll shared memory
// between continues.
func (v *VM) Continue(budget int64) (cpu.Stop, error) {
	if v.brd.State() != board.On {
		return cpu.Stop{}, fmt.Errorf("emul: VM not running")
	}
	return v.brd.Core().Continue(budget), nil
}

// DrainUART returns the guest's console lines since the previous drain (the
// emulator's serial chardev).
func (v *VM) DrainUART() []string {
	lines := v.brd.UART().Drain()
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = l.Text
	}
	return out
}
