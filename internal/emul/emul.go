// Package emul is the QEMU-analogue execution environment that
// emulation-bound baselines (Tardis, Gustave) run on: the same OS image on
// the emulated board model, controlled through VM facilities rather than a
// debug probe — direct shared-memory access, cheap VM resets that restore
// the image from the host-side file (so a "bricked" flash can never strand
// the fuzzer), and a TCG-speed execution cost. What the VM cannot give is
// the hardware peripherals QEMU does not model; the OS code behind them is
// unreachable here.
package emul

import (
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/osinfo"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// OpCost is the hypervisor-mediated cost of one VM facility operation
// (shared-memory access, control command). Exported so the tiered backend
// adapter charges the same virtual-clock cost the baselines pay.
const OpCost = 300 * time.Microsecond

// ResetCost is a QEMU machine reset plus image reload.
const ResetCost = 900 * time.Millisecond

// HostSpeedup is how much faster a dynamic-translation emulator on a
// server-class host retires target basic blocks than the MCU it models:
// virtual time on an emulated shard is host wall-clock, and a multi-GHz
// translator comfortably outruns a ~100-500MHz embedded core. Applied as a
// clock-rate multiplier on emulation twin specs (backend.EmulSpecFor), it
// is — together with the near-zero per-command cost — why the emulation
// tier explores an order of magnitude faster than hardware at equal shard
// counts.
const HostSpeedup = 16

// VM hosts one emulated target.
type VM struct {
	Info  *osinfo.Info
	Spec  *board.Spec
	Clock *vtime.Clock

	brd    *board.Board
	images *osinfo.Images
	lay    board.Layout
}

// NewVM is the single VM construction path: board model over pre-built
// images and an externally owned clock, with no provisioning or boot. The
// backend adapter uses it directly (its engine owns bring-up and the clock);
// backend.OpenVM layers image building and the first boot on top for the
// emulation-bound baselines. A nil clock gets a private one.
func NewVM(info *osinfo.Info, spec *board.Spec, images *osinfo.Images, clock *vtime.Clock) (*VM, error) {
	if !spec.Emulated {
		return nil, fmt.Errorf("emul: board %s is not an emulated model", spec.Name)
	}
	table, err := info.PartTable()
	if err != nil {
		return nil, err
	}
	if clock == nil {
		clock = &vtime.Clock{}
	}
	brd, err := board.New(spec, table, info.Builder, clock)
	if err != nil {
		return nil, err
	}
	return &VM{Info: info, Spec: spec, Clock: clock, brd: brd, images: images, lay: board.LayoutFor(spec)}, nil
}

// Layout exposes the shared RAM structure addresses.
func (v *VM) Layout() board.Layout { return v.lay }

// Board exposes the underlying board (tests only).
func (v *VM) Board() *board.Board { return v.brd }

// Provision writes the pristine images into the VM's backing flash without
// booting — the construction half of Reset, exposed so the tiered backend
// can drive bring-up in the same order the hardware path does.
func (v *VM) Provision() error {
	if err := v.brd.Provision("bootloader", v.images.Boot); err != nil {
		return err
	}
	return v.brd.Provision("kernel", v.images.Kernel)
}

// Boot cold-boots the provisioned VM.
func (v *VM) Boot() error { return v.brd.Boot() }

// Reset reloads the pristine image and reboots — the VM-snapshot-style
// restoration emulator fuzzers enjoy; it cannot fail the way hardware
// reflash can.
func (v *VM) Reset() error {
	v.Clock.Advance(ResetCost)
	if err := v.Provision(); err != nil {
		return err
	}
	if err := v.brd.Boot(); err != nil {
		return fmt.Errorf("emul: boot after reset: %w", err)
	}
	return nil
}

// Close kills the VM.
func (v *VM) Close() {
	if v.brd.State() == board.On {
		v.brd.Core().Kill()
	}
}

// ReadMem reads guest memory through the shared-memory mapping.
func (v *VM) ReadMem(addr uint64, n int) ([]byte, error) {
	v.Clock.Advance(OpCost)
	if v.brd.State() != board.On {
		return nil, fmt.Errorf("emul: VM not running")
	}
	return v.brd.Mem().Read(addr, n)
}

// WriteMem writes guest memory through the shared-memory mapping.
func (v *VM) WriteMem(addr uint64, data []byte) error {
	v.Clock.Advance(OpCost)
	if v.brd.State() != board.On {
		return fmt.Errorf("emul: VM not running")
	}
	return v.brd.Mem().Write(addr, data)
}

// Continue runs the guest for up to budget blocks and returns why it
// stopped. Emulator fuzzers have no breakpoints; they poll shared memory
// between continues.
func (v *VM) Continue(budget int64) (cpu.Stop, error) {
	if v.brd.State() != board.On {
		return cpu.Stop{}, fmt.Errorf("emul: VM not running")
	}
	return v.brd.Core().Continue(budget), nil
}

// DrainUART returns the guest's console lines since the previous drain (the
// emulator's serial chardev).
func (v *VM) DrainUART() []string {
	lines := v.brd.UART().Drain()
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = l.Text
	}
	return out
}
