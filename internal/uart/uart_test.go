package uart

import (
	"fmt"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/vtime"
)

func TestLineSplitting(t *testing.T) {
	clock := &vtime.Clock{}
	u := New(clock)
	u.WriteString("hello ")
	u.WriteString("world\npartial")
	lines := u.Drain()
	if len(lines) != 1 || lines[0].Text != "hello world" {
		t.Fatalf("lines: %+v", lines)
	}
	u.WriteString(" done\n")
	lines = u.Drain()
	if len(lines) != 1 || lines[0].Text != "partial done" {
		t.Fatalf("lines: %+v", lines)
	}
}

func TestDrainIsIncremental(t *testing.T) {
	u := New(&vtime.Clock{})
	u.WriteString("a\nb\n")
	if got := len(u.Drain()); got != 2 {
		t.Fatalf("first drain: %d", got)
	}
	if got := len(u.Drain()); got != 0 {
		t.Fatalf("second drain: %d", got)
	}
	u.WriteString("c\n")
	if got := u.Drain(); len(got) != 1 || got[0].Text != "c" {
		t.Fatalf("third drain: %+v", got)
	}
	if u.Pending() != 0 {
		t.Fatal("pending after drain")
	}
}

func TestTimestamps(t *testing.T) {
	clock := &vtime.Clock{}
	u := New(clock)
	u.WriteString("first\n")
	clock.Advance(5 * time.Millisecond)
	u.WriteString("second\n")
	lines := u.Drain()
	if lines[0].At != 0 || lines[1].At != 5*time.Millisecond {
		t.Fatalf("timestamps: %+v", lines)
	}
}

func TestDropTail(t *testing.T) {
	u := New(&vtime.Clock{})
	u.WriteString("old line\n")
	u.Drain() // host saw it
	u.WriteString("banner\n")
	u.WriteString("tail line\n")
	u.WriteString("unfinished")
	u.DropTail()
	lines := u.Drain()
	// The unfinished partial and up to FIFODepth bytes of undrained lines
	// are lost; "banner" (older) may survive depending on budget.
	for _, l := range lines {
		if l.Text == "tail line" {
			t.Fatalf("tail survived: %+v", lines)
		}
	}
}

func TestDropTailPreservesDrained(t *testing.T) {
	u := New(&vtime.Clock{})
	u.WriteString("kept\n")
	u.Drain()
	u.DropTail()
	if got := u.All(); len(got) != 1 || got[0].Text != "kept" {
		t.Fatalf("drained history damaged: %+v", got)
	}
}

func TestDropTailBudget(t *testing.T) {
	u := New(&vtime.Clock{})
	// One line larger than the FIFO cannot be un-sent.
	big := ""
	for i := 0; i < FIFODepth+10; i++ {
		big += "x"
	}
	u.WriteString(big + "\n")
	u.DropTail()
	if len(u.All()) != 1 {
		t.Fatal("line larger than the FIFO was dropped")
	}
}

func TestWriterInterface(t *testing.T) {
	u := New(&vtime.Clock{})
	fmt.Fprintf(u, "value=%d\n", 42)
	lines := u.Drain()
	if len(lines) != 1 || lines[0].Text != "value=42" {
		t.Fatalf("fprintf: %+v", lines)
	}
	if u.BytesWritten() != len("value=42\n") {
		t.Fatalf("bytes: %d", u.BytesWritten())
	}
}

func TestReset(t *testing.T) {
	u := New(&vtime.Clock{})
	u.WriteString("x\nleftover")
	u.Reset()
	if len(u.All()) != 0 || u.Pending() != 0 {
		t.Fatal("reset incomplete")
	}
	u.WriteString("fresh\n")
	if got := u.Drain(); len(got) != 1 || got[0].Text != "fresh" {
		t.Fatalf("after reset: %+v", got)
	}
}
