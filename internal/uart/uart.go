// Package uart models the target's serial console. The kernel's kprintf path
// ends here; the host-side log monitor drains the line buffer over the debug
// link and matches crash/assert patterns against it. A hard fault can drop
// bytes that were still in the TX FIFO — the paper notes UART logs "may
// vanish after a fault" — which DropTail models.
package uart

import (
	"strings"
	"time"

	"github.com/eof-fuzz/eof/internal/vtime"
)

// FIFODepth is the modelled TX FIFO size in bytes; at most this many
// unflushed bytes can be lost on a fault.
const FIFODepth = 64

// Line is one emitted console line with its virtual timestamp.
type Line struct {
	At   time.Duration
	Text string
}

// UART is the serial device. Target code writes; the host drains.
type UART struct {
	clock   *vtime.Clock
	partial strings.Builder
	lines   []Line
	drained int // index of first undrained line
	written int // total bytes ever written, for stats
}

// New creates a UART stamped against the given clock.
func New(clock *vtime.Clock) *UART {
	return &UART{clock: clock}
}

// WriteString appends console output, splitting on newlines.
func (u *UART) WriteString(s string) {
	u.written += len(s)
	for {
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			u.partial.WriteString(s)
			return
		}
		u.partial.WriteString(s[:i])
		u.lines = append(u.lines, Line{At: u.clock.Now(), Text: u.partial.String()})
		u.partial.Reset()
		s = s[i+1:]
	}
}

// Write implements io.Writer for fmt.Fprintf convenience in kernel code.
func (u *UART) Write(p []byte) (int, error) {
	u.WriteString(string(p))
	return len(p), nil
}

// Drain returns lines emitted since the previous Drain.
func (u *UART) Drain() []Line {
	out := u.lines[u.drained:]
	u.drained = len(u.lines)
	return out
}

// All returns every line since boot (for crash reports).
func (u *UART) All() []Line { return u.lines }

// Pending reports how many lines are waiting to be drained.
func (u *UART) Pending() int { return len(u.lines) - u.drained }

// BytesWritten returns the total byte count pushed through the UART.
func (u *UART) BytesWritten() int { return u.written }

// DropTail models losing the TX FIFO on a fault: the unfinished partial line
// and up to FIFODepth bytes of the most recent *undrained* complete lines
// disappear.
func (u *UART) DropTail() {
	u.partial.Reset()
	budget := FIFODepth
	for len(u.lines) > u.drained && budget > 0 {
		last := u.lines[len(u.lines)-1]
		if len(last.Text)+1 > budget {
			return
		}
		budget -= len(last.Text) + 1
		u.lines = u.lines[:len(u.lines)-1]
	}
}

// Reset clears everything, as a power cycle would.
func (u *UART) Reset() {
	u.partial.Reset()
	u.lines = nil
	u.drained = 0
}
