package trace

// Buffer accumulates events in memory. The fleet gives each shard's engine a
// Buffer as its journal sink and drains them in shard order at every epoch
// barrier, which is what makes a fleet journal deterministic: each shard's
// stream is deterministic on its own, and the merge order is fixed.
//
// A Buffer is not safe for concurrent use; each engine goroutine owns its
// own, and the fleet only drains between epochs (after the barrier join).
type Buffer struct {
	evs []Event
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit appends ev.
func (b *Buffer) Emit(ev Event) { b.evs = append(b.evs, ev) }

// Drain returns the accumulated events and resets the buffer.
func (b *Buffer) Drain() []Event {
	out := b.evs
	b.evs = nil
	return out
}

// Events returns the accumulated events without draining them.
func (b *Buffer) Events() []Event { return b.evs }

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.evs) }
