package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Status is the live consumer behind `-status-every`: it folds the event
// stream into campaign counters and prints a one-line summary whenever the
// configured host interval has elapsed. Unlike the journal path it is
// attached directly to every shard (mutex-guarded), so the operator sees
// progress while a fleet epoch is still running; its output is host-time
// paced and therefore not part of the deterministic trace.
type Status struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	now   func() time.Time // injectable for tests
	next  time.Time

	execs       int
	edges       int // sum of per-shard fresh edges (exact in solo mode)
	sharedMax   int // fleet-wide total carried by sync-epoch events
	restores    int
	bugs        int
	triaged     int
	faults      int64
	retries     int64
	reconnects  int64
	quarantines int
	maxAt       time.Duration

	// Tier breakdown (heterogeneous pools only). emulStart is the first
	// emulation-tier shard index, or -1 when the pool is untiered.
	emulStart  int
	emulExecs  int
	confirmEnq int // emulation observations queued for hardware confirmation
	confirmFin int // verdicts drawn from the queue (confirm or diverge)

	lastExecs     int
	lastEmulExecs int
	lastAt        time.Duration
}

// NewStatus builds a status sink printing to w every host interval (values
// below a second still print at most once per event).
func NewStatus(w io.Writer, every time.Duration) *Status {
	if every <= 0 {
		every = 10 * time.Second
	}
	return &Status{w: w, every: every, now: time.Now, emulStart: -1}
}

// SetEmulStart tells the sink where the emulation tier begins (the first
// emulation shard's physical index) so the status line can break execs/s down
// per tier and show the confirmation-queue depth. Call before the campaign
// starts; a negative value (the default) keeps the untiered line.
func (s *Status) SetEmulStart(start int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.emulStart = start
}

// Emit folds ev into the counters and prints when the interval is due.
func (s *Status) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch ev.Kind {
	case ExecEnd:
		s.execs++
		if s.emulStart >= 0 && ev.Shard >= s.emulStart {
			s.emulExecs++
		}
	case ConfirmEnqueue:
		s.confirmEnq++
	case TierConfirm:
		s.confirmFin++
	case TierDiverge:
		// hw-only-crash divergences are extra verdicts discovered while
		// replaying a coverage item; they do not retire a queue entry.
		if !strings.HasPrefix(ev.Reason, "hw-only-crash:") {
			s.confirmFin++
		}
	case CovGain:
		s.edges += ev.Edges
	case RestoreBegin:
		s.restores++
	case Bug:
		s.bugs++
	case TriageEnd:
		s.triaged++
	case LinkFault:
		s.faults++
	case LinkRetry:
		s.retries++
	case LinkReconnect:
		s.reconnects++
	case SyncEpoch:
		if ev.Edges > s.sharedMax {
			s.sharedMax = ev.Edges
		}
	case Quarantine:
		s.quarantines++
	}
	if ev.At > s.maxAt {
		s.maxAt = ev.At
	}
	now := s.now()
	if s.next.IsZero() {
		s.next = now.Add(s.every)
		return
	}
	if now.Before(s.next) {
		return
	}
	s.next = now.Add(s.every)
	s.print()
}

// print renders one status line. Callers hold the mutex.
func (s *Status) print() {
	rate := 0.0
	if dt := (s.maxAt - s.lastAt).Seconds(); dt > 0 {
		rate = float64(s.execs-s.lastExecs) / dt
	}
	tiers := ""
	if s.emulStart >= 0 {
		hwRate, emulRate := 0.0, 0.0
		if dt := (s.maxAt - s.lastAt).Seconds(); dt > 0 {
			emulRate = float64(s.emulExecs-s.lastEmulExecs) / dt
			hwRate = float64((s.execs-s.lastExecs)-(s.emulExecs-s.lastEmulExecs)) / dt
		}
		depth := s.confirmEnq - s.confirmFin
		if depth < 0 {
			depth = 0
		}
		tiers = fmt.Sprintf(" hw=%.1f/s emul=%.1f/s confirmq=%d", hwRate, emulRate, depth)
	}
	restorePct := 0.0
	if s.execs > 0 {
		restorePct = 100 * float64(s.restores) / float64(s.execs)
	}
	edges := s.edges
	if s.sharedMax > edges {
		edges = s.sharedMax
	}
	link := "ok"
	if s.faults > 0 || s.retries > 0 || s.reconnects > 0 {
		link = fmt.Sprintf("%d faults, %d retries, %d reconnects", s.faults, s.retries, s.reconnects)
	}
	health := ""
	if s.quarantines > 0 {
		health = fmt.Sprintf(" quarantined=%d", s.quarantines)
	}
	if s.triaged > 0 {
		health += fmt.Sprintf(" triaged=%d", s.triaged)
	}
	fmt.Fprintf(s.w, "[eof] t=%v execs=%d (%.1f/s)%s edges=%d restores=%d (%.1f%%/exec) bugs=%d%s link: %s\n",
		s.maxAt.Round(time.Second), s.execs, rate, tiers, edges, s.restores, restorePct, s.bugs, health, link)
	s.lastExecs = s.execs
	s.lastEmulExecs = s.emulExecs
	s.lastAt = s.maxAt
}
