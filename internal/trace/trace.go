// Package trace is the campaign observability layer: a structured,
// virtual-clock-stamped event journal for the whole fuzzing stack. The engine
// emits typed events (exec begin/end, coverage gain, restore begin/end with
// reason, reflash, corpus add, bug), the link layers emit fault/retry/
// reconnect events, and the fleet emits sync-epoch events tagged with shard
// id. Three consumers sit on top:
//
//   - the flight recorder — a fixed-size ring every Tracer keeps; its last N
//     events are attached to every bug report, giving each bug its pre-crash
//     context;
//   - the JSONL journal — a deterministic event stream written one JSON
//     object per line (fleet shards are buffered per epoch and merged in
//     shard order, so the journal is reproducible run to run);
//   - the live status sink — periodic execs/s, edges, restore-rate and
//     link-health lines while a campaign runs.
//
// The package also owns board-time accounting: an Accountant attributes every
// virtual-clock delta of the debug-link stack to one of the TimeBy categories
// (executing / restoring / reflashing / link-overhead / sync-barrier), which
// reproduces the paper's argument that on-hardware throughput is dominated by
// restoration and link round trips.
//
// The default sink is a nop; emitting into it costs a ring store and two
// no-op interface calls, so tracing is always on and near free unless a
// consumer is attached.
package trace

import (
	"time"

	"github.com/eof-fuzz/eof/internal/vtime"
)

// Kind is the event type tag.
type Kind uint8

// Event kinds. The engine emits the exec/restore/corpus/bug kinds, the link
// layers the link kinds, and the fleet the sync kind.
const (
	// ExecBegin marks the start of one test-case attempt (Exec is the
	// ordinal the attempt is working toward; a restored attempt re-begins
	// under the same ordinal).
	ExecBegin Kind = iota
	// ExecEnd marks a completed test case (Exec is its ordinal).
	ExecEnd
	// CovGain records globally new coverage (Edges = fresh edge count).
	CovGain
	// RestoreBegin marks the start of state restoration (Reason = trigger:
	// "crash", "timeout", "pc-stall", ...).
	RestoreBegin
	// RestoreEnd marks restoration complete (Reason = trigger, Dur = total
	// restoration cost including any reflash).
	RestoreEnd
	// Reflash records a full image reflash inside a restoration.
	Reflash
	// CorpusAdd records a coverage-increasing input joining the corpus
	// (Edges = the fresh edges that earned it a slot).
	CorpusAdd
	// Bug records a newly deduplicated finding (Reason = signature).
	Bug
	// LinkFault records an injected or observed link fault (Reason =
	// "<kind>:<command>").
	LinkFault
	// LinkRetry records a transparent command re-send (Reason = command).
	LinkRetry
	// LinkReconnect records a recovered link death.
	LinkReconnect
	// SyncEpoch marks a fleet feedback-exchange barrier (Exec = epoch
	// number, Edges = fleet-wide distinct edges after the exchange).
	SyncEpoch
	// RungEscalate records the recovery ladder climbing past a failed rung
	// (Reason = "<rung>:<restore reason>").
	RungEscalate
	// Quarantine records the fleet supervisor retiring a board (Exec =
	// slot, Reason = "dead" or "sick").
	Quarantine
	// SparePromote records a hot spare taking over a quarantined slot
	// (Exec = slot, Edges = shared-history edges imported at promotion).
	SparePromote
	// TriageBegin marks the start of triaging one finding (Reason = cluster,
	// Edges = the recorded program's call count).
	TriageBegin
	// TriageMinStep records one minimization probe (Reason =
	// "<phase>:hit|miss", Edges = the candidate program's call count).
	TriageMinStep
	// TriageEnd marks a finding fully triaged (Reason =
	// "<cluster>:<reproducibility>", Exec = replay hits, Edges = minimized
	// call count, Dur = total triage cost).
	TriageEnd
	// SnapshotTake records a golden snapshot being cached (Reason = kernel
	// state: "post-boot", "post-init").
	SnapshotTake
	// DeltaRestore records a restoration satisfied by the snapshot rung
	// (Reason = trigger, Edges = bytes shipped). It appears between
	// RestoreBegin and RestoreEnd in place of any Reflash event.
	DeltaRestore
	// TierConfirm records the hardware tier reproducing an emulation-tier
	// finding (Reason = "cov" or "crash:<cluster>", Exec = the emulation
	// shard, Edges = the confirmed fresh-edge count for coverage items).
	TierConfirm
	// TierDiverge records a cross-tier disagreement (Reason =
	// "emul-only-cov", "emul-only-crash:<cluster>" or
	// "hw-only-crash:<cluster>", Exec = the emulation shard, Edges = the
	// unconfirmed fresh-edge count for coverage items).
	TierDiverge
	// ConfirmEnqueue records an emulation-tier observation joining the
	// confirmation queue (coverage items: Edges = the claimed fresh edges;
	// crash items: Reason = the cluster). Only ConfirmCapture engines emit
	// it, so untiered journals are unchanged. The live consumers derive the
	// confirmation-queue depth from enqueues minus drawn verdicts.
	ConfirmEnqueue
	// TimeBudget is the end-of-campaign accounting record: one event per
	// board-time category (Reason = the category name, Dur = the accounted
	// time, zero buckets included), plus the "restoring-delta" /
	// "restoring-full" sub-buckets and a terminal "duration" record carrying
	// the shard's accounted campaign Duration. In fleet mode the budgets are
	// emitted after barrier-idle attribution, so each shard's buckets sum to
	// the pool wall-clock exactly — eoftrace rebuilds Report.TimeBy from
	// these events and cross-checks that invariant.
	TimeBudget
	// Checkpoint records a durable campaign checkpoint committed at an epoch
	// barrier (Exec = the campaign-lifetime epoch ordinal, Edges = the
	// checkpointed cumulative edge count). Emitted by the persistence layer
	// with Shard = -1 (campaign level, its own sequence space), so per-shard
	// streams are untouched by `-corpus`.
	Checkpoint
	// Distill records a corpus distillation shrinking the on-disk store to a
	// minimal covering set (Exec = the epoch, Edges = entries dropped,
	// Reason = "kept:<n>"). Shard = -1, like Checkpoint.
	Distill

	numKinds
)

var kindNames = [numKinds]string{
	"exec-begin", "exec-end", "cov-gain",
	"restore-begin", "restore-end", "reflash",
	"corpus-add", "bug",
	"link-fault", "link-retry", "link-reconnect",
	"sync-epoch",
	"rung-escalate", "quarantine", "spare-promote",
	"triage-begin", "triage-min-step", "triage-end",
	"snapshot-take", "delta-restore",
	"tier-confirm", "tier-diverge",
	"confirm-enqueue", "time-budget",
	"checkpoint", "distill",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName maps a journal kind string back to its Kind — the decoder-side
// inverse of Kind.String used by the journal analytics reader.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one journal entry. The Tracer stamps Seq, At and Shard; emitters
// fill Kind and whichever payload fields apply.
type Event struct {
	// Seq is the per-shard emission ordinal (deterministic for a fixed
	// seed, so journals diff cleanly run to run).
	Seq uint64
	// At is the virtual campaign time of the event.
	At time.Duration
	// Shard is the emitting engine's fleet shard index (0 in solo mode).
	Shard int
	Kind  Kind
	// Exec is the test-case ordinal (exec events) or epoch number (sync).
	Exec int
	// Edges carries an edge count where the kind defines one.
	Edges int
	// Reason carries the restore trigger, bug signature, or link command.
	Reason string
	// Dur is a span cost where the kind defines one (RestoreEnd).
	Dur time.Duration
}

// Sink consumes emitted events. Implementations attached as a live sink in
// fleet mode must be safe for concurrent use; journal sinks are only written
// from one goroutine at a time.
type Sink interface {
	Emit(Event)
}

type nopSink struct{}

func (nopSink) Emit(Event) {}

// Nop is the default sink; it discards every event.
var Nop Sink = nopSink{}

// DefaultRingSize is the flight recorder's capacity when unconfigured: big
// enough to hold several execs of pre-crash context, small enough that a bug
// report stays readable.
const DefaultRingSize = 64

// Tracer is one engine's emission point: it stamps events with the virtual
// clock and shard id, keeps the flight-recorder ring, and forwards to the
// journal and live sinks. A Tracer is single-goroutine like the engine that
// owns it; the sinks handle their own concurrency.
type Tracer struct {
	shard int
	clock *vtime.Clock
	sink  Sink // journal (deterministic path)
	live  Sink // status (live path)
	ring  []Event
	seq   uint64
}

// New builds a tracer for the given shard. ringSize <= 0 selects
// DefaultRingSize. Both sinks start as Nop.
func New(shard int, clock *vtime.Clock, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{
		shard: shard,
		clock: clock,
		sink:  Nop,
		live:  Nop,
		ring:  make([]Event, 0, ringSize),
	}
}

// SetSink attaches the journal consumer (nil resets to Nop).
func (t *Tracer) SetSink(s Sink) {
	if s == nil {
		s = Nop
	}
	t.sink = s
}

// SetLive attaches the live consumer (nil resets to Nop).
func (t *Tracer) SetLive(s Sink) {
	if s == nil {
		s = Nop
	}
	t.live = s
}

// Emit stamps ev (Seq, At, Shard), records it in the flight-recorder ring
// and forwards it to the sinks.
func (t *Tracer) Emit(ev Event) {
	ev.Seq = t.seq
	ev.At = t.clock.Now()
	ev.Shard = t.shard
	t.seq++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[int(ev.Seq)%len(t.ring)] = ev
	}
	t.sink.Emit(ev)
	t.live.Emit(ev)
}

// Emitted returns how many events this tracer has emitted.
func (t *Tracer) Emitted() uint64 { return t.seq }

// Recent snapshots the flight-recorder ring, oldest first. This is the
// pre-crash context attached to bug reports.
func (t *Tracer) Recent() []Event {
	n := len(t.ring)
	out := make([]Event, 0, n)
	if t.seq <= uint64(n) {
		return append(out, t.ring...)
	}
	start := int(t.seq % uint64(n))
	out = append(out, t.ring[start:]...)
	return append(out, t.ring[:start]...)
}

// Multi fans one event stream out to several sinks.
func Multi(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil && s != Nop {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return Nop
	case 1:
		return kept[0]
	}
	return multiSink(kept)
}

type multiSink []Sink

func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}
