package trace

import (
	"fmt"
	"strings"
	"time"

	"github.com/eof-fuzz/eof/internal/vtime"
)

// Category is one bucket of the board-time budget.
type Category uint8

// Board-time categories. Every virtual-clock advance of a campaign lands in
// exactly one of them, so TimeBy sums back to the campaign Duration (per
// shard, in fleet mode) — the invariant the report tests assert.
const (
	// CatExec is target execution: Continue / vRun round trips outside
	// restoration, including the link cost of the resume command itself.
	CatExec Category = iota
	// CatRestore is state restoration: the reboot, breakpoint re-arm and
	// resynchronisation at executor_main (excluding reflash transfers).
	CatRestore
	// CatReflash is full-image reflashing inside a restoration: flash
	// erase and write transfers.
	CatReflash
	// CatLink is pure debug-link overhead: coverage drains, UART drains,
	// mailbox writes, breakpoint arming and every other non-executing
	// round trip, plus retry backoff.
	CatLink
	// CatSync is fleet sync-barrier time: how long a shard's board sat
	// idle at epoch barriers because a sibling's slice ran longer. Always
	// zero in solo mode.
	CatSync
	// CatTriage is crash-triage time: replay, minimization and repro
	// confirmation round trips, including any restores they trigger. Zero
	// unless triage is enabled.
	CatTriage
	// CatConfirm is cross-tier confirmation time: hardware re-execution of
	// emulation-tier findings, including any restores the replays trigger.
	// Zero unless the fleet runs a tiered campaign.
	CatConfirm

	NumCategories
)

var categoryNames = [NumCategories]string{
	"executing", "restoring", "reflashing", "link-overhead", "sync-barrier", "triaging", "confirming",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "unknown"
}

// Categories lists every board-time category in display order.
func Categories() []Category {
	return []Category{CatExec, CatRestore, CatReflash, CatLink, CatSync, CatTriage, CatConfirm}
}

// TimeBy is the board-time budget broken down by category — the report field
// behind the paper's restoration-cost argument.
type TimeBy struct {
	Executing    time.Duration
	Restoring    time.Duration
	Reflashing   time.Duration
	LinkOverhead time.Duration
	SyncBarrier  time.Duration
	Triaging     time.Duration
	Confirming   time.Duration

	// RestoringDelta and RestoringFull split Restoring by restore mechanism:
	// delta is the snapshot-restore rung (vRestore shipping only dirty
	// state), full is the classic reset/reflash ladder. They are sub-buckets,
	// not categories — Sum() excludes them, and RestoringDelta +
	// RestoringFull == Restoring whenever all restore time is attributed
	// through Accountant.EndRestore (the report tests assert this).
	RestoringDelta time.Duration
	RestoringFull  time.Duration
}

// Of returns the duration of one category.
func (t TimeBy) Of(c Category) time.Duration {
	switch c {
	case CatExec:
		return t.Executing
	case CatRestore:
		return t.Restoring
	case CatReflash:
		return t.Reflashing
	case CatLink:
		return t.LinkOverhead
	case CatSync:
		return t.SyncBarrier
	case CatTriage:
		return t.Triaging
	case CatConfirm:
		return t.Confirming
	}
	return 0
}

// Add accumulates d into category c.
func (t *TimeBy) Add(c Category, d time.Duration) {
	switch c {
	case CatExec:
		t.Executing += d
	case CatRestore:
		t.Restoring += d
	case CatReflash:
		t.Reflashing += d
	case CatLink:
		t.LinkOverhead += d
	case CatSync:
		t.SyncBarrier += d
	case CatTriage:
		t.Triaging += d
	case CatConfirm:
		t.Confirming += d
	}
}

// Sum returns the total accounted board time.
func (t TimeBy) Sum() time.Duration {
	return t.Executing + t.Restoring + t.Reflashing + t.LinkOverhead + t.SyncBarrier + t.Triaging + t.Confirming
}

// Merge accumulates o into t (fleet report aggregation: the merged TimeBy
// sums shard board time, i.e. Shards x the pool's wall-clock Duration).
func (t *TimeBy) Merge(o TimeBy) {
	t.Executing += o.Executing
	t.Restoring += o.Restoring
	t.Reflashing += o.Reflashing
	t.LinkOverhead += o.LinkOverhead
	t.SyncBarrier += o.SyncBarrier
	t.Triaging += o.Triaging
	t.Confirming += o.Confirming
	t.RestoringDelta += o.RestoringDelta
	t.RestoringFull += o.RestoringFull
}

// Share returns category c's fraction of the accounted total, in [0,1].
func (t TimeBy) Share(c Category) float64 {
	sum := t.Sum()
	if sum <= 0 {
		return 0
	}
	return float64(t.Of(c)) / float64(sum)
}

// String renders a stable "category=duration (share%)" list for logs and
// tables.
func (t TimeBy) String() string {
	var b strings.Builder
	for i, c := range Categories() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v (%.1f%%)", c, t.Of(c).Round(time.Millisecond), 100*t.Share(c))
	}
	return b.String()
}

// Accountant attributes virtual-clock deltas to board-time categories. The
// engine's timed link wrapper calls Begin/End around every debug-link
// command; because every clock advance of a running campaign happens inside
// some link command (adapter latency, payload transfer, executed cycles,
// retry backoff, injected fault penalties), the accounted total equals the
// campaign Duration exactly.
type Accountant struct {
	clock *vtime.Clock
	by    TimeBy
}

// NewAccountant builds an accountant over clock.
func NewAccountant(clock *vtime.Clock) *Accountant {
	return &Accountant{clock: clock}
}

// Begin returns the current virtual time, to be passed to End.
func (a *Accountant) Begin() time.Duration { return a.clock.Now() }

// End attributes the delta since start to category c.
func (a *Accountant) End(c Category, start time.Duration) {
	a.by.Add(c, a.clock.Now()-start)
}

// EndRestore attributes the delta since start to the restoring category and
// additionally to the delta or full sub-bucket, keeping RestoringDelta +
// RestoringFull == Restoring. Every CatRestore attribution must go through
// here for the sub-bucket invariant to hold.
func (a *Accountant) EndRestore(delta bool, start time.Duration) {
	d := a.clock.Now() - start
	a.by.Restoring += d
	if delta {
		a.by.RestoringDelta += d
	} else {
		a.by.RestoringFull += d
	}
}

// Reset zeroes the accumulated budget (the engine resets after Setup so the
// accounted window matches the report's Duration window).
func (a *Accountant) Reset() { a.by = TimeBy{} }

// Snapshot returns the accumulated breakdown.
func (a *Accountant) Snapshot() TimeBy { return a.by }
