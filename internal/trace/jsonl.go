package trace

import (
	"io"
	"strconv"
	"sync"
)

// JSONL writes every event as one JSON object per line — the `-trace <file>`
// journal format. Serialisation is hand-rolled (no reflection, one buffer
// reused across events) so an attached journal costs a few percent of
// campaign host time at most. The first write error latches and suppresses
// further writes; check Err after the campaign.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL builds a journal sink over w. Callers own w's buffering and
// closing (cmd/eof wraps the file in a bufio.Writer and flushes at exit).
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, buf: make([]byte, 0, 160)}
}

// Emit writes ev as one JSON line.
func (j *JSONL) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.buf = AppendJSON(j.buf[:0], ev)
	_, j.err = j.w.Write(j.buf)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// AppendJSON appends ev's JSON-line form (including the trailing newline)
// to b. Zero-valued payload fields are omitted.
func AppendJSON(b []byte, ev Event) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"at_ns":`...)
	b = strconv.AppendInt(b, int64(ev.At), 10)
	b = append(b, `,"shard":`...)
	b = strconv.AppendInt(b, int64(ev.Shard), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Exec != 0 {
		b = append(b, `,"exec":`...)
		b = strconv.AppendInt(b, int64(ev.Exec), 10)
	}
	if ev.Edges != 0 {
		b = append(b, `,"edges":`...)
		b = strconv.AppendInt(b, int64(ev.Edges), 10)
	}
	if ev.Reason != "" {
		b = append(b, `,"reason":`...)
		b = strconv.AppendQuote(b, ev.Reason)
	}
	if ev.Dur != 0 {
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, int64(ev.Dur), 10)
	}
	return append(b, '}', '\n')
}
