package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// JournalVersion is the schema version stamped into every journal header.
// Bump it whenever the event wire format changes incompatibly; readers refuse
// versions they do not know.
const JournalVersion = 1

// HeaderKind is the "kind" discriminator of the journal header record, chosen
// so it can never collide with an event kind name.
const HeaderKind = "journal"

// Header is the versioned journal preamble written as the first JSONL line:
// schema version plus enough campaign identity (target, topology, seed and an
// options digest) for offline tooling to interpret the stream — in particular
// the tier layout, so eoftrace can attribute shard indices to the hardware or
// emulation tier without guessing.
type Header struct {
	// Kind is always HeaderKind; it keeps the header distinguishable from
	// events when a reader scans line by line.
	Kind string `json:"kind"`
	// V is the journal schema version (JournalVersion at write time).
	V int `json:"v"`
	// OS, Board and Seed identify the campaign.
	OS    string `json:"os"`
	Board string `json:"board"`
	Seed  int64  `json:"seed"`
	// Shards, Spares, Triage and EmulShards describe the board topology; the
	// emulation tier's physical indices start at Shards+Spares(+1 if Triage).
	Shards     int  `json:"shards"`
	Spares     int  `json:"spares,omitempty"`
	Triage     bool `json:"triage,omitempty"`
	EmulShards int  `json:"emul_shards,omitempty"`
	// Digest fingerprints the full campaign options (FNV-64a over their
	// canonical rendering), so two journals can be compared for config drift
	// without replaying either.
	Digest string `json:"digest,omitempty"`
}

// EmulStart returns the physical board index where the emulation tier begins,
// or -1 for an untiered campaign.
func (h Header) EmulStart() int {
	if h.EmulShards <= 0 {
		return -1
	}
	start := h.Shards + h.Spares
	if h.Triage {
		start++
	}
	return start
}

// ParseHeader decodes a journal header line. It returns an error when the
// line is not a header record or names a schema version this build does not
// understand.
func ParseHeader(line []byte) (Header, error) {
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return Header{}, fmt.Errorf("trace: journal header: %w", err)
	}
	if h.Kind != HeaderKind {
		return Header{}, fmt.Errorf("trace: first journal line has kind %q, not a %q header", h.Kind, HeaderKind)
	}
	if h.V > JournalVersion || h.V < 1 {
		return Header{}, fmt.Errorf("trace: journal schema v%d is not supported (this build reads v1..v%d)", h.V, JournalVersion)
	}
	return h, nil
}

// AppendHeaderJSON appends h's JSON-line form (including the trailing
// newline) to b. Field order is fixed by the struct, so the header is as
// deterministic as the event stream it precedes.
func AppendHeaderJSON(b []byte, h Header) []byte {
	h.Kind = HeaderKind
	if h.V == 0 {
		h.V = JournalVersion
	}
	enc, err := json.Marshal(h)
	if err != nil {
		// A Header holds only scalars; Marshal cannot fail. Keep the
		// signature append-style anyway.
		panic("trace: header marshal: " + err.Error())
	}
	b = append(b, enc...)
	return append(b, '\n')
}

// IsHeaderLine reports whether a journal line is the header record, letting
// readers skip it cheaply without a full parse.
func IsHeaderLine(line []byte) bool {
	return strings.Contains(string(line), `"kind":"`+HeaderKind+`"`)
}

// JSONL writes every event as one JSON object per line — the `-trace <file>`
// journal format. Serialisation is hand-rolled (no reflection, one buffer
// reused across events) so an attached journal costs a few percent of
// campaign host time at most. The first write error latches and suppresses
// further writes; check Err after the campaign.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL builds a journal sink over w. Callers own w's buffering and
// closing (cmd/eof wraps the file in a bufio.Writer and flushes at exit).
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: w, buf: make([]byte, 0, 160)}
}

// Emit writes ev as one JSON line.
func (j *JSONL) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.buf = AppendJSON(j.buf[:0], ev)
	_, j.err = j.w.Write(j.buf)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// AppendJSON appends ev's JSON-line form (including the trailing newline)
// to b. Zero-valued payload fields are omitted.
func AppendJSON(b []byte, ev Event) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"at_ns":`...)
	b = strconv.AppendInt(b, int64(ev.At), 10)
	b = append(b, `,"shard":`...)
	b = strconv.AppendInt(b, int64(ev.Shard), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Exec != 0 {
		b = append(b, `,"exec":`...)
		b = strconv.AppendInt(b, int64(ev.Exec), 10)
	}
	if ev.Edges != 0 {
		b = append(b, `,"edges":`...)
		b = strconv.AppendInt(b, int64(ev.Edges), 10)
	}
	if ev.Reason != "" {
		b = append(b, `,"reason":`...)
		b = strconv.AppendQuote(b, ev.Reason)
	}
	if ev.Dur != 0 {
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, int64(ev.Dur), 10)
	}
	return append(b, '}', '\n')
}
