package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/vtime"
)

func TestTracerStampsAndForwards(t *testing.T) {
	clock := &vtime.Clock{}
	clock.Advance(3 * time.Second)
	buf := NewBuffer()
	tr := New(2, clock, 0)
	tr.SetSink(buf)

	tr.Emit(Event{Kind: ExecBegin, Exec: 1})
	clock.Advance(time.Second)
	tr.Emit(Event{Kind: ExecEnd, Exec: 1})

	evs := buf.Events()
	if len(evs) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(evs))
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("bad sequence numbers: %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Shard != 2 || evs[1].Shard != 2 {
		t.Fatalf("shard tag lost: %+v", evs)
	}
	if evs[0].At != 3*time.Second || evs[1].At != 4*time.Second {
		t.Fatalf("virtual stamps wrong: %v, %v", evs[0].At, evs[1].At)
	}
	if tr.Emitted() != 2 {
		t.Fatalf("Emitted() = %d, want 2", tr.Emitted())
	}
}

func TestFlightRecorderKeepsLastN(t *testing.T) {
	clock := &vtime.Clock{}
	tr := New(0, clock, 4)
	for i := 1; i <= 10; i++ {
		tr.Emit(Event{Kind: ExecBegin, Exec: i})
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring returned %d events, want 4", len(recent))
	}
	for i, ev := range recent {
		if ev.Exec != 7+i {
			t.Fatalf("ring[%d].Exec = %d, want %d (oldest first)", i, ev.Exec, 7+i)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	tr := New(0, &vtime.Clock{}, 8)
	tr.Emit(Event{Kind: ExecBegin, Exec: 1})
	tr.Emit(Event{Kind: ExecEnd, Exec: 1})
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("partial ring returned %d events, want 2", len(recent))
	}
	if recent[0].Kind != ExecBegin || recent[1].Kind != ExecEnd {
		t.Fatalf("partial ring out of order: %+v", recent)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var out bytes.Buffer
	sink := NewJSONL(&out)
	clock := &vtime.Clock{}
	clock.Advance(1500 * time.Millisecond)
	tr := New(1, clock, 0)
	tr.SetSink(sink)

	tr.Emit(Event{Kind: RestoreBegin, Exec: 42, Reason: `crash "quoted"`})
	tr.Emit(Event{Kind: CovGain, Exec: 42, Edges: 17})
	tr.Emit(Event{Kind: RestoreEnd, Exec: 42, Reason: "crash", Dur: 250 * time.Millisecond})
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	type row struct {
		Seq   uint64 `json:"seq"`
		AtNS  int64  `json:"at_ns"`
		Shard int    `json:"shard"`
		Kind  string `json:"kind"`
		Exec  int    `json:"exec"`
		Edges int    `json:"edges"`
		Rsn   string `json:"reason"`
		DurNS int64  `json:"dur_ns"`
	}
	var rows []row
	for i, l := range lines {
		var r row
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, l)
		}
		rows = append(rows, r)
	}
	if rows[0].Kind != "restore-begin" || rows[0].Rsn != `crash "quoted"` || rows[0].Exec != 42 {
		t.Fatalf("row 0 mangled: %+v", rows[0])
	}
	if rows[0].AtNS != (1500*time.Millisecond).Nanoseconds() || rows[0].Shard != 1 {
		t.Fatalf("row 0 stamps wrong: %+v", rows[0])
	}
	if rows[1].Kind != "cov-gain" || rows[1].Edges != 17 {
		t.Fatalf("row 1 mangled: %+v", rows[1])
	}
	if rows[2].Kind != "restore-end" || rows[2].DurNS != (250*time.Millisecond).Nanoseconds() {
		t.Fatalf("row 2 mangled: %+v", rows[2])
	}
}

func TestBufferDrainResets(t *testing.T) {
	b := NewBuffer()
	b.Emit(Event{Kind: ExecBegin})
	b.Emit(Event{Kind: ExecEnd})
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	evs := b.Drain()
	if len(evs) != 2 || b.Len() != 0 {
		t.Fatalf("drain returned %d, left %d", len(evs), b.Len())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewBuffer(), NewBuffer()
	m := Multi(a, b)
	m.Emit(Event{Kind: Bug})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out missed a sink: %d, %d", a.Len(), b.Len())
	}
}

func TestStatusPrintsAtInterval(t *testing.T) {
	var out bytes.Buffer
	s := NewStatus(&out, time.Second)
	base := time.Unix(1000, 0)
	now := base
	s.now = func() time.Time { return now }

	emit := func(ev Event) { s.Emit(ev) }
	emit(Event{Kind: ExecEnd, At: 100 * time.Millisecond, Exec: 1})
	if out.Len() != 0 {
		t.Fatalf("printed before the interval elapsed: %q", out.String())
	}
	now = base.Add(1500 * time.Millisecond)
	emit(Event{Kind: CovGain, At: 2 * time.Second, Edges: 30})
	emit(Event{Kind: ExecEnd, At: 2 * time.Second, Exec: 2})
	line := out.String()
	if line == "" {
		t.Fatal("no status line after the interval elapsed")
	}
	if !strings.Contains(line, "execs=1") || !strings.Contains(line, "edges=30") {
		t.Fatalf("status line missing counters: %q", line)
	}
	if !strings.Contains(line, "link: ok") {
		t.Fatalf("healthy link not reported: %q", line)
	}

	out.Reset()
	now = now.Add(2 * time.Second)
	emit(Event{Kind: LinkRetry, At: 3 * time.Second})
	if !strings.Contains(out.String(), "1 retries") {
		t.Fatalf("link trouble not reported: %q", out.String())
	}
}

func TestTimeByArithmetic(t *testing.T) {
	var tb TimeBy
	tb.Add(CatExec, 6*time.Second)
	tb.Add(CatRestore, time.Second)
	tb.Add(CatReflash, 2*time.Second)
	tb.Add(CatLink, time.Second)
	if tb.Sum() != 10*time.Second {
		t.Fatalf("Sum = %v, want 10s", tb.Sum())
	}
	if got := tb.Share(CatExec); got != 0.6 {
		t.Fatalf("Share(exec) = %v, want 0.6", got)
	}
	for _, c := range Categories() {
		if tb.Of(c) < 0 {
			t.Fatalf("negative bucket %v", c)
		}
	}
	var merged TimeBy
	merged.Merge(tb)
	merged.Merge(tb)
	if merged.Sum() != 20*time.Second {
		t.Fatalf("merged Sum = %v, want 20s", merged.Sum())
	}
	s := tb.String()
	if !strings.Contains(s, "executing=6s (60.0%)") {
		t.Fatalf("String() = %q", s)
	}
}

func TestAccountantAttributesClockDeltas(t *testing.T) {
	clock := &vtime.Clock{}
	a := NewAccountant(clock)
	start := a.Begin()
	clock.Advance(3 * time.Second)
	a.End(CatExec, start)
	start = a.Begin()
	clock.Advance(time.Second)
	a.End(CatLink, start)
	tb := a.Snapshot()
	if tb.Executing != 3*time.Second || tb.LinkOverhead != time.Second {
		t.Fatalf("bad attribution: %+v", tb)
	}
	if tb.Sum() != clock.Now() {
		t.Fatalf("accounted %v != clock %v", tb.Sum(), clock.Now())
	}
	a.Reset()
	if a.Snapshot().Sum() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

// BenchmarkEmitNop measures the tracer hot path with the default discard
// sink — the cost every campaign pays whether or not tracing is consumed.
func BenchmarkEmitNop(b *testing.B) {
	tr := New(0, &vtime.Clock{}, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Kind: ExecEnd, Exec: i})
	}
}
