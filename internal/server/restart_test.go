package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	eof "github.com/eof-fuzz/eof"
	"github.com/eof-fuzz/eof/internal/sched"
)

// TestRestartAdoptsCheckpointedJob is the daemon crash/restart contract:
// a daemon stops (crash-equivalently — running job rows stay "running" on
// disk, exactly what kill -9 leaves behind, except the in-flight epoch
// also drained to a checkpoint), a second daemon opens the same data
// directory, re-adopts the job as queued-with-resume, rebuilds the tenant
// fair-share ledger from the table, and runs the job to completion without
// losing the board time or coverage already banked.
func TestRestartAdoptsCheckpointedJob(t *testing.T) {
	dataDir := t.TempDir()
	opts := Options{
		DataDir: dataDir,
		Boards:  1,
		Quantum: 30 * time.Second,
		Logf:    t.Logf,
	}
	srv1, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	raw, _ := json.Marshal(eof.Options{OS: "freertos", SyncEvery: 15 * time.Second})
	rec, err := srv1.Submit("alice", SubmitRequest{Minutes: 5, Options: raw})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := rec.ID

	// Let at least one slice land a durable checkpoint, then go down while
	// the job is mid-budget.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r := srv1.snapshot(id)
		if r.UsedNS > 0 && r.Checkpoints > 0 {
			break
		}
		if sched.State(r.State).Terminal() {
			t.Fatalf("job reached %s before the daemon could stop mid-flight", r.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never banked a checkpoint: %+v", r)
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv1.Stop()

	pre := srv1.snapshot(id)
	if pre.UsedNS >= pre.BudgetNS {
		t.Fatalf("job finished (%v used of %v) before the stop; cannot exercise adoption",
			time.Duration(pre.UsedNS), time.Duration(pre.BudgetNS))
	}
	// The row on disk must still say "running" — that is the crash shape
	// adoption exists for.
	diskRaw, err := os.ReadFile(filepath.Join(dataDir, "jobs", id+".json"))
	if err != nil {
		t.Fatalf("job row: %v", err)
	}
	var disk Record
	if err := json.Unmarshal(diskRaw, &disk); err != nil {
		t.Fatalf("job row: %v", err)
	}
	if disk.State != string(sched.Running) {
		t.Fatalf("on-disk state after stop = %q, want running (the crash shape)", disk.State)
	}

	srv2, err := New(opts)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer srv2.Stop()

	adopted := srv2.snapshot(id)
	if adopted == nil {
		t.Fatalf("restarted daemon lost job %s", id)
	}
	if !adopted.Resumed {
		t.Errorf("adopted job not marked Resumed: %+v", adopted)
	}
	if adopted.UsedNS != pre.UsedNS {
		t.Errorf("adoption changed banked board time: %v -> %v",
			time.Duration(pre.UsedNS), time.Duration(adopted.UsedNS))
	}
	if adopted.Edges < pre.Edges {
		t.Errorf("adoption lost coverage: %d -> %d edges", pre.Edges, adopted.Edges)
	}

	// The fair-share ledger is rebuilt from the table's charges.
	var alice time.Duration
	for _, u := range srv2.Usage() {
		if u.Tenant == "alice" {
			alice = u.Used
		}
	}
	if alice < time.Duration(pre.ChargedNS) {
		t.Errorf("ledger after restart = %v, want >= the %v already charged",
			alice, time.Duration(pre.ChargedNS))
	}

	// The adopted job resumes from its checkpoint and finishes its budget;
	// coverage is a superset of what the first daemon banked.
	deadline = time.Now().Add(60 * time.Second)
	var fin *Record
	for {
		fin = srv2.snapshot(id)
		if sched.State(fin.State).Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("adopted job never finished: %+v", fin)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fin.State != string(sched.Done) {
		t.Fatalf("adopted job state = %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.UsedNS < fin.BudgetNS {
		t.Errorf("adopted job used %v of its %v budget",
			time.Duration(fin.UsedNS), time.Duration(fin.BudgetNS))
	}
	if fin.Edges < pre.Edges {
		t.Errorf("final coverage %d edges < pre-restart %d", fin.Edges, pre.Edges)
	}
	if fin.Checkpoints <= pre.Checkpoints {
		t.Errorf("no new checkpoints after restart: %d -> %d", pre.Checkpoints, fin.Checkpoints)
	}
}

// TestRestartAdoptsQueuedJob: a job the first daemon never started still
// survives the restart and runs under the second.
func TestRestartAdoptsQueuedJob(t *testing.T) {
	dataDir := t.TempDir()
	opts := Options{
		DataDir: dataDir,
		Boards:  1,
		Quantum: 30 * time.Second,
		Logf:    t.Logf,
	}
	srv1, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	raw, _ := json.Marshal(eof.Options{OS: "freertos"})
	runner, err := srv1.Submit("alice", SubmitRequest{Minutes: 10, Options: raw})
	if err != nil {
		t.Fatalf("Submit runner: %v", err)
	}
	queued, err := srv1.Submit("bob", SubmitRequest{Minutes: 1, Options: raw})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if s := srv1.snapshot(queued.ID).State; s != string(sched.Queued) {
		t.Fatalf("second job on a 1-board pool = %s, want queued", s)
	}
	srv1.Stop()

	srv2, err := New(opts)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer srv2.Stop()
	_ = runner

	deadline := time.Now().Add(60 * time.Second)
	for {
		fin := srv2.snapshot(queued.ID)
		if sched.State(fin.State).Terminal() {
			if fin.State != string(sched.Done) {
				t.Fatalf("queued job after restart = %s (error %q), want done", fin.State, fin.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job never ran after restart: %+v", fin)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
