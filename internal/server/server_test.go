package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	eof "github.com/eof-fuzz/eof"
	"github.com/eof-fuzz/eof/internal/trace"
)

// newTestServer starts a daemon over a temp data directory and fronts it
// with an httptest server, returning a client bound to the given tenant.
func newTestServer(t *testing.T, boards int, quantum time.Duration) (*Server, *httptest.Server, func(tenant string) *Client) {
	t.Helper()
	s, err := New(Options{
		DataDir: t.TempDir(),
		Boards:  boards,
		Quantum: quantum,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Stop()
	})
	return s, ts, func(tenant string) *Client {
		return &Client{Base: ts.URL, Tenant: tenant}
	}
}

// spec marshals a campaign spec the way clients do.
func spec(t *testing.T, o eof.Options) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(o)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	return raw
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, cl *Client, id string, want ...string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		js, err := cl.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		for _, w := range want {
			if js.State == w {
				return js
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return nil
}

// TestAPILifecycle drives the happy path over the wire: submit, run to
// completion in multiple quantum slices, observe status and the list view.
func TestAPILifecycle(t *testing.T) {
	_, _, mkClient := newTestServer(t, 2, time.Minute)
	cl := mkClient("alice")

	js, err := cl.Submit(SubmitRequest{
		Minutes: 2,
		Options: spec(t, eof.Options{OS: "freertos", SyncEvery: 30 * time.Second}),
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if js.ID == "" || js.Tenant != "alice" || js.Priority != 1 || js.Boards != 1 {
		t.Fatalf("unexpected submit response: %+v", js)
	}

	fin, err := cl.Wait(js.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != "done" {
		t.Fatalf("state = %s (error %q), want done", fin.State, fin.Error)
	}
	if fin.UsedS < 120 {
		t.Errorf("used %.0fs, want >= the 120s budget", fin.UsedS)
	}
	if fin.Slices < 2 {
		t.Errorf("slices = %d, want >= 2 (2min budget over 1min quantum)", fin.Slices)
	}
	if fin.Execs == 0 || fin.Edges == 0 {
		t.Errorf("no fuzzing progress recorded: %+v", fin)
	}
	if fin.Checkpoints == 0 {
		t.Errorf("no durable checkpoints recorded across slices")
	}

	all, err := cl.Jobs("")
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	if len(all) != 1 || all[0].ID != js.ID {
		t.Fatalf("list = %+v, want exactly the submitted job", all)
	}
	if byTenant, _ := cl.Jobs("nobody"); len(byTenant) != 0 {
		t.Fatalf("tenant filter leaked jobs: %+v", byTenant)
	}
}

// TestAPIPreemptResume checks the preempt half of the lifecycle: a running
// job is requeued at an epoch barrier, resumes from its checkpoint, and
// still runs its full budget to completion.
func TestAPIPreemptResume(t *testing.T) {
	_, _, mkClient := newTestServer(t, 1, time.Minute)
	cl := mkClient("alice")

	js, err := cl.Submit(SubmitRequest{
		Minutes: 10,
		Options: spec(t, eof.Options{OS: "freertos", SyncEvery: 15 * time.Second}),
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, cl, js.ID, "running")
	if err := cl.Preempt(js.ID); err != nil {
		t.Fatalf("Preempt: %v", err)
	}
	fin, err := cl.Wait(js.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if fin.State != "done" {
		t.Fatalf("state = %s (error %q), want done despite preemption", fin.State, fin.Error)
	}
	if fin.Preempts < 1 {
		t.Errorf("preempts = %d, want >= 1", fin.Preempts)
	}
	if fin.UsedS < 600 {
		t.Errorf("used %.0fs, want the full 600s budget after resume", fin.UsedS)
	}
	if fin.Slices < 2 {
		t.Errorf("slices = %d, want >= 2 (preemption forces a regrant)", fin.Slices)
	}
}

// TestAPIBadRequests pins the 4xx contract for malformed submissions.
func TestAPIBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, 2, time.Minute)

	good := func(o eof.Options) string {
		raw, _ := json.Marshal(o)
		return fmt.Sprintf(`{"minutes": 5, "options": %s}`, raw)
	}
	cases := []struct {
		name   string
		tenant string
		body   string
		want   int
	}{
		{"missing tenant", "", good(eof.Options{OS: "freertos"}), http.StatusBadRequest},
		{"invalid tenant", "no spaces", good(eof.Options{OS: "freertos"}), http.StatusBadRequest},
		{"not json", "alice", "{", http.StatusBadRequest},
		{"unknown request field", "alice", `{"minutes": 5, "options": {"OS":"freertos"}, "frobnicate": 1}`, http.StatusBadRequest},
		{"missing options", "alice", `{"minutes": 5}`, http.StatusBadRequest},
		{"missing OS", "alice", `{"minutes": 5, "options": {}}`, http.StatusBadRequest},
		{"unknown OS", "alice", `{"minutes": 5, "options": {"OS":"templeos"}}`, http.StatusBadRequest},
		{"unknown board", "alice", `{"minutes": 5, "options": {"OS":"freertos","Board":"pdp11"}}`, http.StatusBadRequest},
		{"unknown options field", "alice", `{"minutes": 5, "options": {"OS":"freertos","Warp":9}}`, http.StatusBadRequest},
		{"zero minutes", "alice", `{"minutes": 0, "options": {"OS":"freertos"}}`, http.StatusBadRequest},
		{"negative priority", "alice", `{"minutes": 5, "priority": -1, "options": {"OS":"freertos"}}`, http.StatusBadRequest},
		{"corpus dir is daemon-managed", "alice", good(eof.Options{OS: "freertos", CorpusDir: "/tmp/x"}), http.StatusBadRequest},
		{"resume is daemon-managed", "alice", good(eof.Options{OS: "freertos", Resume: true}), http.StatusBadRequest},
		{"metrics addr is daemon-managed", "alice", good(eof.Options{OS: "freertos", MetricsAddr: ":0"}), http.StatusBadRequest},
		{"footprint exceeds pool", "alice", good(eof.Options{OS: "freertos", Shards: 3}), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns", strings.NewReader(tc.body))
			req.Header.Set("Content-Type", "application/json")
			if tc.tenant != "" {
				req.Header.Set(TenantHeader, tc.tenant)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.want, buf.String())
			}
		})
	}

	// Unknown-ID routes are 404s, not 500s.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/campaigns/c-999999"},
		{http.MethodDelete, "/v1/campaigns/c-999999"},
		{http.MethodPost, "/v1/campaigns/c-999999/preempt"},
		{http.MethodGet, "/v1/campaigns/c-999999/events"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", probe.method, probe.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestAPICancelIdempotent cancels a queued job and a running job, and
// repeats each DELETE to pin idempotency.
func TestAPICancelIdempotent(t *testing.T) {
	_, _, mkClient := newTestServer(t, 1, time.Minute)
	cl := mkClient("alice")

	run, err := cl.Submit(SubmitRequest{
		Minutes: 10,
		Options: spec(t, eof.Options{OS: "freertos", SyncEvery: 15 * time.Second}),
	})
	if err != nil {
		t.Fatalf("Submit running job: %v", err)
	}
	queued, err := cl.Submit(SubmitRequest{
		Minutes: 10,
		Options: spec(t, eof.Options{OS: "freertos"}),
	})
	if err != nil {
		t.Fatalf("Submit queued job: %v", err)
	}
	waitState(t, cl, run.ID, "running")

	// The queued job cancels immediately; a second DELETE is a no-op.
	if err := cl.Cancel(queued.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if js := waitState(t, cl, queued.ID, "canceled"); js.UsedS != 0 {
		t.Errorf("canceled queued job consumed %.0fs board time", js.UsedS)
	}
	if err := cl.Cancel(queued.ID); err != nil {
		t.Fatalf("second Cancel on canceled job: %v", err)
	}

	// The running job drains at its next epoch barrier.
	if err := cl.Cancel(run.ID); err != nil {
		t.Fatalf("Cancel running: %v", err)
	}
	fin := waitState(t, cl, run.ID, "canceled")
	if fin.UsedS >= fin.BudgetS {
		t.Errorf("canceled job ran its whole %.0fs budget", fin.BudgetS)
	}
	if err := cl.Cancel(run.ID); err != nil {
		t.Fatalf("second Cancel on canceled job: %v", err)
	}
}

// TestAPIEventsReplay checks the /events contract: the stream replays the
// durable journal from its first line — the versioned header — and a
// terminal job's stream ends instead of hanging.
func TestAPIEventsReplay(t *testing.T) {
	_, _, mkClient := newTestServer(t, 1, 30*time.Second)
	cl := mkClient("alice")

	js, err := cl.Submit(SubmitRequest{
		Minutes: 1,
		Options: spec(t, eof.Options{OS: "freertos", SyncEvery: 15 * time.Second}),
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if fin, err := cl.Wait(js.ID, 5*time.Millisecond); err != nil || fin.State != "done" {
		t.Fatalf("Wait: %v, %+v", err, fin)
	}

	rc, err := cl.Events(js.ID)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	defer rc.Close()
	sc := bufio.NewScanner(rc)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines, headers := 0, 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if lines == 0 {
			h, err := trace.ParseHeader(line)
			if err != nil {
				t.Fatalf("first events line is not a journal header: %v (line %q)", err, line)
			}
			if h.OS != "freertos" {
				t.Errorf("header OS = %q, want freertos", h.OS)
			}
		}
		if trace.IsHeaderLine(line) {
			headers++
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if lines < 2 {
		t.Fatalf("events stream had %d lines, want header + events", lines)
	}
	// Each campaign slice contributes a header-prefixed segment; the
	// 1-minute budget over a 30s quantum yields at least two.
	if headers < 2 {
		t.Errorf("headers = %d, want one per slice (>= 2)", headers)
	}
}
