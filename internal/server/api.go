package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"github.com/eof-fuzz/eof/internal/sched"
)

// TenantHeader carries the caller's tenant identity. The API is
// deliberately auth-less (a trusted-network control plane, like a build
// farm): the header names the tenant for fair-share accounting, it does
// not authenticate it.
const TenantHeader = "X-EOF-Tenant"

// SubmitRequest is the POST /v1/campaigns body.
type SubmitRequest struct {
	// Minutes is the board-time budget in virtual minutes (fleet specs
	// split it across their shards, exactly like the CLI's -minutes).
	Minutes int `json:"minutes"`
	// Priority is the tenant's fair-share weight (default 1).
	Priority int `json:"priority,omitempty"`
	// Options is the campaign spec: the public eof.Options in JSON form.
	// Persistence and telemetry fields are daemon-managed and rejected.
	Options json.RawMessage `json:"options"`
}

// JobStatus is the wire form of one job.
type JobStatus struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	State       string  `json:"state"`
	Priority    int     `json:"priority"`
	Boards      int     `json:"boards"`
	BudgetS     float64 `json:"budget_s"`
	UsedS       float64 `json:"used_s"`
	ChargedS    float64 `json:"charged_s"`
	Slices      int     `json:"slices"`
	Preempts    int     `json:"preempts"`
	Resumed     bool    `json:"resumed"`
	Execs       int     `json:"execs"`
	Edges       int     `json:"edges"`
	Bugs        int     `json:"bugs"`
	Checkpoints int     `json:"checkpoints"`
	Error       string  `json:"error,omitempty"`
}

func statusOf(r *Record) JobStatus {
	return JobStatus{
		ID: r.ID, Tenant: r.Tenant, State: r.State, Priority: r.Priority,
		Boards:   r.Boards,
		BudgetS:  time.Duration(r.BudgetNS).Seconds(),
		UsedS:    time.Duration(r.UsedNS).Seconds(),
		ChargedS: time.Duration(r.ChargedNS).Seconds(),
		Slices:   r.Slices, Preempts: r.Preempts, Resumed: r.Resumed,
		Execs: r.Execs, Edges: r.Edges, Bugs: r.Bugs,
		Checkpoints: r.Checkpoints, Error: r.Error,
	}
}

// PoolStatus is the GET /v1/pool document: board inventory plus the
// per-tenant fair-share ledger.
type PoolStatus struct {
	BoardType string         `json:"board_type"`
	Boards    []BoardStatus  `json:"boards"`
	Free      int            `json:"free"`
	BusyS     float64        `json:"busy_s"`
	Tenants   []TenantStatus `json:"tenants"`
}

// BoardStatus is one pool slot.
type BoardStatus struct {
	Name   string  `json:"name"`
	JobID  string  `json:"job_id,omitempty"`
	Tenant string  `json:"tenant,omitempty"`
	Leases int     `json:"leases"`
	BusyS  float64 `json:"busy_s"`
}

// TenantStatus is one fair-share ledger row.
type TenantStatus struct {
	Tenant string  `json:"tenant"`
	Weight int     `json:"weight"`
	UsedS  float64 `json:"used_s"`
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/campaigns/{id}/preempt", s.handlePreempt)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/pool", s.handlePool)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.reg.WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		writeErr(w, http.StatusBadRequest, "missing %s header", TenantHeader)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rec, err := s.Submit(tenant, req)
	if err != nil {
		if IsBadRequest(err) {
			writeErr(w, http.StatusBadRequest, "%v", err)
		} else {
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, statusOf(rec))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	var out []JobStatus
	for _, rec := range s.Jobs() {
		if tenant != "" && rec.Tenant != tenant {
			continue
		}
		out = append(out, statusOf(&rec))
	}
	if out == nil {
		out = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec := s.snapshot(r.PathValue("id"))
	if rec == nil {
		writeErr(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, statusOf(rec))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.snapshot(id) == nil {
		writeErr(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	if err := s.Cancel(id); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePreempt(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.snapshot(id) == nil {
		writeErr(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	if err := s.Preempt(id); err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// handleEvents streams the job's trace journal as NDJSON: the durable
// journal replays from its first line (the versioned header — each
// campaign slice contributes its own header-prefixed segment), then the
// live tail follows until the job reaches a terminal state or the client
// disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := s.snapshot(id)
	if rec == nil {
		writeErr(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	h, err := s.hubOf(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	replay, tail, cancel, err := h.Subscribe()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if len(replay) > 0 {
		if _, err := w.Write(replay); err != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	// Terminal jobs have a complete journal: replay is the whole story.
	if rec := s.snapshot(id); rec != nil && sched.State(rec.State).Terminal() {
		return
	}
	for {
		select {
		case line, ok := <-tail:
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handlePool(w http.ResponseWriter, r *http.Request) {
	boards := s.Pool()
	ps := PoolStatus{
		BoardType: s.opts.BoardType,
		BusyS:     s.PoolBusy().Seconds(),
		Boards:    make([]BoardStatus, 0, len(boards)),
		Tenants:   []TenantStatus{},
	}
	for _, b := range boards {
		if b.JobID == "" {
			ps.Free++
		}
		ps.Boards = append(ps.Boards, BoardStatus{
			Name: b.Name, JobID: b.JobID, Tenant: b.Tenant,
			Leases: b.Leases, BusyS: b.Busy.Seconds(),
		})
	}
	for _, u := range s.Usage() {
		ps.Tenants = append(ps.Tenants, TenantStatus{
			Tenant: u.Tenant, Weight: u.Weight, UsedS: u.Used.Seconds(),
		})
	}
	writeJSON(w, http.StatusOK, ps)
}
