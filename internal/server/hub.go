package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// hub is one job's event stream: every journal line the job's campaign
// slices emit is appended to a durable per-job JSONL file and fanned out
// to live subscribers. The file is the replay source — a subscriber
// always sees the journal from its first line (the versioned header) —
// and it survives daemon restarts, so /events works for adopted jobs too.
type hub struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	subs  map[int]chan []byte
	next  int
	ended bool
}

func openHub(path string) (*hub, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("server: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	return &hub{path: path, f: f, subs: make(map[int]chan []byte)}, nil
}

// Write implements io.Writer for Options.TraceJSONL: durable append, then
// best-effort fan-out. A subscriber that cannot keep up loses lines from
// its live tail — never from the replay, which always re-reads the file.
func (h *hub) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, err := h.f.Write(p); err != nil {
		return 0, err
	}
	if len(h.subs) > 0 {
		cp := append([]byte(nil), p...)
		for _, ch := range h.subs {
			select {
			case ch <- cp:
			default:
			}
		}
	}
	return len(p), nil
}

// Subscribe atomically snapshots the journal-so-far and attaches a live
// tail channel, so no line is ever lost between replay and stream. The
// channel is closed when the job ends; cancel detaches early.
func (h *hub) Subscribe() (replay []byte, tail <-chan []byte, cancel func(), err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay, err = os.ReadFile(h.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, nil, fmt.Errorf("server: journal replay: %w", err)
	}
	ch := make(chan []byte, 1024)
	if h.ended {
		close(ch)
		return replay, ch, func() {}, nil
	}
	id := h.next
	h.next++
	h.subs[id] = ch
	cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if c, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(c)
		}
	}
	return replay, ch, cancel, nil
}

// End marks the stream complete (the job reached a terminal state): every
// live subscriber's channel closes after the lines already queued.
func (h *hub) End() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ended {
		return
	}
	h.ended = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

func (h *hub) Close() {
	h.End()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f != nil {
		_ = h.f.Close()
		h.f = nil
	}
}
