// Package server is the EOF control plane: a long-running daemon that
// multiplexes many fuzzing campaigns from many tenants over one shared
// board pool. Campaigns are submitted over an HTTP/JSON API as jobs
// (spec = the public eof.Options), scheduled by internal/sched's
// fair-share quota scheduler, executed as a sequence of bounded campaign
// slices that each end at an epoch barrier with a durable checkpoint
// (the PR 9 persistence path), and preempted or resumed between slices
// via the store's -resume semantics. The daemon persists its job table
// under the data directory next to the corpus store, so a restart — or a
// kill -9 — re-adopts every queued and checkpointed campaign and loses at
// most the epoch in flight.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	eof "github.com/eof-fuzz/eof"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/fleet"
	"github.com/eof-fuzz/eof/internal/metrics"
	"github.com/eof-fuzz/eof/internal/sched"
)

// Options configures a daemon instance.
type Options struct {
	// DataDir roots everything durable: the job table (jobs/), the shared
	// corpus store (corpus/, one namespace per job) and the per-job event
	// journals (journals/).
	DataDir string
	// BoardType names the pool's board model (inventory display only;
	// jobs pick their own target board). Defaults to stm32h745.
	BoardType string
	// Boards is the pool size (default 2).
	Boards int
	// Quantum is the board-time length of one scheduling slice: how much
	// board time a job consumes before the scheduler reconsiders the
	// grant at the slice's final epoch barrier. Default 20 virtual
	// minutes.
	Quantum time.Duration
	// Logf receives daemon progress lines (nil = silent).
	Logf func(format string, args ...interface{})
}

// Server is one daemon instance.
type Server struct {
	opts Options
	sch  *sched.Scheduler
	pool *fleet.BoardPool

	reg     *metrics.Registry
	mTenant *metrics.CounterVec // eofd_tenant_board_seconds_total{tenant}
	mPool   *metrics.Counter    // eofd_pool_board_seconds_total
	mSlices *metrics.Counter
	mJobs   *metrics.GaugeVec // eofd_jobs{state}

	mu        sync.Mutex
	recs      map[string]*Record
	hubs      map[string]*hub
	running   map[string]*eof.Campaign // in-flight slice per running job
	nextID    int
	stopping  bool
	wg        sync.WaitGroup
	scheduleM sync.Mutex // serializes grant→lease→spawn batches
}

// Record is one job-table row — the persisted form of a job. Spec is the
// tenant's submitted options JSON, kept verbatim: every slice re-decodes
// it, so the daemon never persists unserializable live state.
type Record struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Seq    int    `json:"seq"`
	// Priority is the tenant fair-share weight; Boards the hardware pool
	// footprint derived from the spec.
	Priority int `json:"priority"`
	Boards   int `json:"boards"`
	// BudgetNS is the total board-time ask; UsedNS the budget consumed
	// (slice duration × shards); ChargedNS the fair-share charge (the
	// report's TimeBy board-time total, spares and tiers included).
	BudgetNS  int64  `json:"budget_ns"`
	UsedNS    int64  `json:"used_ns"`
	ChargedNS int64  `json:"charged_ns"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	// Slices counts scheduling grants; Preempts barrier requeues; Resumed
	// marks a job adopted from the store after a daemon restart.
	Slices   int  `json:"slices"`
	Preempts int  `json:"preempts"`
	Resumed  bool `json:"resumed"`
	// Cumulative campaign results, summed across slices.
	Execs       int             `json:"execs"`
	Edges       int             `json:"edges"`
	Bugs        int             `json:"bugs"`
	Checkpoints int             `json:"checkpoints"`
	Spec        json.RawMessage `json:"spec"`
}

func (r *Record) remaining() time.Duration {
	if r.UsedNS >= r.BudgetNS {
		return 0
	}
	return time.Duration(r.BudgetNS - r.UsedNS)
}

// New opens (or re-adopts) a daemon over a data directory: the persisted
// job table is loaded, every non-terminal job re-enters the queue —
// running jobs become queued-with-resume, continuing from their last
// durable checkpoint — and the tenant usage ledger is rebuilt from the
// table so fair shares survive the restart.
func New(opts Options) (*Server, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("server: DataDir required")
	}
	if opts.Boards < 1 {
		opts.Boards = 2
	}
	if opts.BoardType == "" {
		opts.BoardType = boards.NameSTM32H745
	}
	if opts.Quantum <= 0 {
		opts.Quantum = 20 * time.Minute
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	for _, d := range []string{jobsDir(opts.DataDir), filepath.Join(opts.DataDir, "journals")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		opts:    opts,
		sch:     sched.New(opts.Boards),
		pool:    fleet.NewBoardPool(opts.BoardType, opts.Boards),
		reg:     metrics.NewRegistry(),
		recs:    make(map[string]*Record),
		hubs:    make(map[string]*hub),
		running: make(map[string]*eof.Campaign),
	}
	s.mTenant = s.reg.NewCounterVec("eofd_tenant_board_seconds_total",
		"Board-seconds charged per tenant (the fair-share ledger).", "tenant")
	s.mPool = s.reg.NewCounter("eofd_pool_board_seconds_total",
		"Board-seconds charged across the whole pool.")
	s.mSlices = s.reg.NewCounter("eofd_slices_total",
		"Campaign slices executed.")
	s.mJobs = s.reg.NewGaugeVec("eofd_jobs",
		"Jobs in the table by state.", "state")
	if err := s.adopt(); err != nil {
		return nil, err
	}
	s.publishJobGauges()
	s.Kick()
	return s, nil
}

func jobsDir(dataDir string) string { return filepath.Join(dataDir, "jobs") }

// adopt loads the persisted job table and rebuilds the scheduler: charges
// first (terminal jobs still owe their tenants' history), then
// re-submission of every unfinished job with its remaining budget.
func (s *Server) adopt() error {
	ents, err := os.ReadDir(jobsDir(s.opts.DataDir))
	if err != nil {
		return fmt.Errorf("server: job table: %w", err)
	}
	var recs []*Record
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(jobsDir(s.opts.DataDir), e.Name()))
		if err != nil {
			return fmt.Errorf("server: job table: %w", err)
		}
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			// A torn row (the daemon died mid-rename on a filesystem
			// without atomic rename) loses that job, not the table.
			s.opts.Logf("eofd: dropping unreadable job row %s: %v", e.Name(), err)
			continue
		}
		recs = append(recs, &r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Seq < recs[b].Seq })
	for _, r := range recs {
		s.recs[r.ID] = r
		if n := idOrdinal(r.ID); n >= s.nextID {
			s.nextID = n + 1
		}
		if r.ChargedNS > 0 {
			s.sch.Charge(r.Tenant, time.Duration(r.ChargedNS))
			s.mTenant.With(r.Tenant).Add(time.Duration(r.ChargedNS).Seconds())
			s.mPool.Add(time.Duration(r.ChargedNS).Seconds())
		}
		switch sched.State(r.State) {
		case sched.Queued, sched.Running:
			if sched.State(r.State) == sched.Running {
				// The daemon died (or stopped) mid-grant: the store holds
				// the job's last durable checkpoint, so it re-enters the
				// queue and resumes from there. At most the in-flight
				// epoch is lost.
				r.State = string(sched.Queued)
				r.Resumed = true
				s.opts.Logf("eofd: re-adopting %s (tenant %s): resuming from last checkpoint", r.ID, r.Tenant)
			}
			if r.remaining() <= 0 {
				r.State = string(sched.Done)
				_ = s.persist(r)
				continue
			}
			if _, err := s.sch.Submit(sched.Spec{
				ID: r.ID, Tenant: r.Tenant, Weight: r.Priority,
				Boards: r.Boards, Budget: r.remaining(),
			}); err != nil {
				return fmt.Errorf("server: re-adopt %s: %w", r.ID, err)
			}
			_ = s.persist(r)
		}
	}
	return nil
}

// idOrdinal extracts the numeric suffix of a job ID ("c-000007" → 7).
func idOrdinal(id string) int {
	n := 0
	if _, err := fmt.Sscanf(id, "c-%d", &n); err != nil {
		return -1
	}
	return n
}

// persist writes one job row atomically (temp + rename). Callers hold
// s.mu or own the record exclusively.
func (s *Server) persist(r *Record) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encode job %s: %w", r.ID, err)
	}
	path := filepath.Join(jobsDir(s.opts.DataDir), r.ID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("server: persist job %s: %w", r.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("server: persist job %s: %w", r.ID, err)
	}
	return nil
}

func (s *Server) publishJobGauges() {
	counts := map[string]int{}
	s.mu.Lock()
	for _, r := range s.recs {
		counts[r.State]++
	}
	s.mu.Unlock()
	for _, st := range []sched.State{sched.Queued, sched.Running, sched.Done, sched.Failed, sched.Canceled} {
		s.mJobs.With(string(st)).Set(float64(counts[string(st)]))
	}
}

// Registry exposes the daemon's metric registry (the /metrics handler).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Submit validates a request and enqueues the job. The spec is the
// public eof.Options in JSON form; the daemon owns persistence and
// telemetry, so CorpusDir/CorpusNamespace/Resume/MetricsAddr in the spec
// are rejected rather than silently rewritten.
func (s *Server) Submit(tenant string, req SubmitRequest) (*Record, error) {
	if tenant == "" {
		return nil, badRequestf("missing tenant")
	}
	if !validTenant(tenant) {
		return nil, badRequestf("invalid tenant %q", tenant)
	}
	_, footprint, err := decodeSpec(req.Options)
	if err != nil {
		return nil, err
	}
	if req.Minutes <= 0 {
		return nil, badRequestf("minutes must be positive")
	}
	if req.Priority < 0 {
		return nil, badRequestf("priority must be >= 1")
	}
	if req.Priority == 0 {
		req.Priority = 1
	}
	if footprint > s.opts.Boards {
		return nil, badRequestf("spec needs %d boards (shards+spares+triage), pool has %d", footprint, s.opts.Boards)
	}
	budget := time.Duration(req.Minutes) * time.Minute

	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: shutting down")
	}
	id := fmt.Sprintf("c-%06d", s.nextID)
	s.nextID++
	r := &Record{
		ID: id, Tenant: tenant, Priority: req.Priority, Boards: footprint,
		BudgetNS: int64(budget), State: string(sched.Queued),
		Spec: append(json.RawMessage(nil), req.Options...),
	}
	j, err := s.sch.Submit(sched.Spec{
		ID: id, Tenant: tenant, Weight: req.Priority, Boards: footprint, Budget: budget,
	})
	if err != nil {
		s.mu.Unlock()
		return nil, badRequestf("%v", err)
	}
	r.Seq = j.Seq
	s.recs[id] = r
	err = s.persist(r)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.opts.Logf("eofd: %s submitted by %s: %d boards, %v budget, weight %d", id, tenant, footprint, budget, req.Priority)
	s.publishJobGauges()
	s.Kick()
	return s.snapshot(id), nil
}

func validTenant(t string) bool {
	if len(t) > 64 {
		return false
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-' || r == '@':
		default:
			return false
		}
	}
	return true
}

// badRequest marks validation failures the API maps to 400.
type badRequest struct{ msg string }

func (e badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...interface{}) error {
	return badRequest{fmt.Sprintf(format, args...)}
}

// IsBadRequest reports whether an error is a client-side spec problem.
func IsBadRequest(err error) bool {
	_, ok := err.(badRequest)
	return ok
}

// decodeSpec strictly decodes a submitted eof.Options JSON document and
// derives the job's hardware-pool footprint.
func decodeSpec(raw json.RawMessage) (eof.Options, int, error) {
	var opts eof.Options
	if len(raw) == 0 {
		return opts, 0, badRequestf("missing options")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil {
		return opts, 0, badRequestf("bad options: %v", err)
	}
	if opts.OS == "" {
		return opts, 0, badRequestf("options.OS required (have %v)", eof.Targets())
	}
	if !contains(eof.Targets(), opts.OS) {
		return opts, 0, badRequestf("unknown OS %q (have %v)", opts.OS, eof.Targets())
	}
	if opts.Board != "" && !contains(eof.Boards(), opts.Board) {
		return opts, 0, badRequestf("unknown board %q (have %v)", opts.Board, eof.Boards())
	}
	// The daemon owns the store layout and telemetry wiring.
	if opts.CorpusDir != "" || opts.CorpusNamespace != "" || opts.Resume {
		return opts, 0, badRequestf("options.CorpusDir/CorpusNamespace/Resume are daemon-managed; submit a plain spec")
	}
	if opts.MetricsAddr != "" {
		return opts, 0, badRequestf("options.MetricsAddr is daemon-managed")
	}
	return opts, footprintOf(opts), nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// footprintOf is the hardware boards a spec occupies while running:
// shards, hot spares, and the fleet triage board when manned. Emulation
// shards run on compute, not pool hardware.
func footprintOf(o eof.Options) int {
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	emul := 0
	if o.Tiers {
		emul = o.EmulShards
		if emul <= 0 {
			emul = 4
		}
	}
	n := shards + o.Spares
	if o.Triage && (shards > 1 || emul > 0) {
		n++
	}
	return n
}

// Kick starts every queued job the scheduler grants boards to. Called
// after submits, barrier transitions and adoption; safe from any
// goroutine.
func (s *Server) Kick() {
	s.scheduleM.Lock()
	defer s.scheduleM.Unlock()
	s.mu.Lock()
	stopping := s.stopping
	s.mu.Unlock()
	if stopping {
		return
	}
	for _, j := range s.sch.Schedule() {
		if _, err := s.pool.Lease(j.ID, j.Tenant, j.Boards); err != nil {
			// Scheduler and pool accounting disagree — a daemon bug.
			// Surface it on the job rather than crashing the daemon.
			_ = s.sch.Finish(j.ID, fmt.Sprintf("board lease: %v", err))
			s.withRecord(j.ID, func(r *Record) {
				r.State = string(sched.Failed)
				r.Error = fmt.Sprintf("board lease: %v", err)
			})
			continue
		}
		s.withRecord(j.ID, func(r *Record) {
			r.State = string(sched.Running)
			r.Slices++
		})
		s.wg.Add(1)
		go s.runJob(j.ID)
	}
	s.publishJobGauges()
}

// withRecord mutates one record under the lock and persists it.
func (s *Server) withRecord(id string, fn func(*Record)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.recs[id]
	if r == nil {
		return
	}
	fn(r)
	if err := s.persist(r); err != nil {
		s.opts.Logf("eofd: %v", err)
	}
}

// hubOf lazily opens a job's event hub.
func (s *Server) hubOf(id string) (*hub, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h := s.hubs[id]; h != nil {
		return h, nil
	}
	h, err := openHub(filepath.Join(s.opts.DataDir, "journals", id+".jsonl"))
	if err != nil {
		return nil, err
	}
	s.hubs[id] = h
	return h, nil
}

// storeHasCheckpoint reports whether a job's namespaced store already
// committed a checkpoint — the resume decision for the next slice.
func (s *Server) storeHasCheckpoint(id string, o eof.Options) bool {
	board := o.Board
	if board == "" {
		board = boards.NameSTM32H745
	}
	ck := filepath.Join(s.opts.DataDir, "corpus", "ns", id, o.OS, board, "checkpoint.json")
	if _, err := os.Stat(ck); err == nil {
		return true
	}
	ck = filepath.Join(s.opts.DataDir, "corpus", "ns", id, o.OS, board, "checkpoint.prev.json")
	_, err := os.Stat(ck)
	return err == nil
}

// runJob owns one scheduling grant: it runs campaign slices of at most
// one quantum of board time, each ending at an epoch barrier with a
// durable checkpoint, until the budget is exhausted, the scheduler
// reclaims the boards, a cancel lands, or the daemon drains. It is the
// only goroutine that transitions its job while the grant is held.
func (s *Server) runJob(id string) {
	defer s.wg.Done()
	var leaseCharged time.Duration
	release := func(used time.Duration) {
		s.pool.Release(id, used)
	}
	for {
		s.mu.Lock()
		r := s.recs[id]
		if r == nil {
			s.mu.Unlock()
			release(leaseCharged)
			return
		}
		rec := *r // snapshot
		s.mu.Unlock()

		remaining := rec.remaining()
		if remaining <= 0 {
			s.finishJob(id, "", leaseCharged)
			return
		}
		slice := s.opts.Quantum
		if slice > remaining {
			slice = remaining
		}
		opts, _, err := decodeSpec(rec.Spec)
		if err != nil {
			s.finishJob(id, fmt.Sprintf("stored spec no longer decodes: %v", err), leaseCharged)
			return
		}
		h, err := s.hubOf(id)
		if err != nil {
			s.finishJob(id, err.Error(), leaseCharged)
			return
		}
		opts.CorpusDir = filepath.Join(s.opts.DataDir, "corpus")
		opts.CorpusNamespace = id
		opts.Resume = s.storeHasCheckpoint(id, opts)
		opts.TraceJSONL = h
		opts.StatusEvery = 0
		opts.MetricsAddr = ""

		c, err := eof.NewCampaign(opts)
		if err != nil {
			s.finishJob(id, fmt.Sprintf("campaign: %v", err), leaseCharged)
			return
		}
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			c.Close()
			release(leaseCharged)
			return
		}
		s.running[id] = c
		s.mu.Unlock()

		rep, runErr := c.Run(slice)
		c.Close()
		s.mu.Lock()
		delete(s.running, id)
		stopping := s.stopping
		s.mu.Unlock()

		if runErr != nil {
			s.finishJob(id, fmt.Sprintf("run: %v", runErr), leaseCharged)
			return
		}
		shards := rep.Shards
		if shards < 1 {
			shards = 1
		}
		consumed := rep.Duration * time.Duration(shards)
		charged := rep.TimeBy.Sum()
		leaseCharged += charged
		s.withRecord(id, func(r *Record) {
			r.UsedNS += int64(consumed)
			r.ChargedNS += int64(charged)
			r.Execs += rep.Execs
			if rep.Edges > r.Edges {
				r.Edges = rep.Edges
			}
			r.Bugs += len(rep.Bugs)
			if rep.Persist != nil {
				r.Checkpoints += rep.Persist.Checkpoints
			}
		})
		s.mTenant.With(rec.Tenant).Add(charged.Seconds())
		s.mPool.Add(charged.Seconds())
		s.mSlices.Inc()

		if stopping {
			// Drain: the slice ended at a barrier with a durable
			// checkpoint; the row stays "running" on disk so the next
			// daemon adopts and resumes it.
			release(leaseCharged)
			return
		}
		s.mu.Lock()
		r2 := s.recs[id]
		done := r2 != nil && r2.remaining() <= 0
		s.mu.Unlock()
		if done {
			// The budget ran out before this barrier's Yield, so the last
			// slice's charge must reach the fair-share ledger directly.
			s.sch.Charge(rec.Tenant, charged)
			s.finishJob(id, "", leaseCharged)
			return
		}
		d, yerr := s.sch.Yield(id, charged)
		if yerr != nil {
			s.finishJob(id, fmt.Sprintf("scheduler: %v", yerr), leaseCharged)
			return
		}
		switch d {
		case sched.Continue:
			s.withRecord(id, func(r *Record) { r.Slices++ })
			continue
		case sched.Requeue:
			release(leaseCharged)
			s.withRecord(id, func(r *Record) {
				r.State = string(sched.Queued)
				r.Preempts++
			})
			s.opts.Logf("eofd: %s preempted at barrier, requeued", id)
			s.publishJobGauges()
			s.Kick()
			return
		case sched.Stop:
			release(leaseCharged)
			s.withRecord(id, func(r *Record) { r.State = string(sched.Canceled) })
			if h, err := s.hubOf(id); err == nil {
				h.End()
			}
			s.opts.Logf("eofd: %s canceled at barrier", id)
			s.publishJobGauges()
			s.Kick()
			return
		}
	}
}

// finishJob retires a job from inside its runJob goroutine.
func (s *Server) finishJob(id, errMsg string, leaseCharged time.Duration) {
	s.pool.Release(id, leaseCharged)
	if err := s.sch.Finish(id, errMsg); err != nil {
		s.opts.Logf("eofd: %v", err)
	}
	s.withRecord(id, func(r *Record) {
		if errMsg != "" {
			r.State = string(sched.Failed)
			r.Error = errMsg
		} else {
			r.State = string(sched.Done)
		}
	})
	if h, err := s.hubOf(id); err == nil {
		h.End()
	}
	if errMsg != "" {
		s.opts.Logf("eofd: %s failed: %s", id, errMsg)
	} else {
		s.opts.Logf("eofd: %s done", id)
	}
	s.publishJobGauges()
	s.Kick()
}

// Preempt asks a running job to give up its boards at the next epoch
// barrier (no-op for queued/terminal jobs).
func (s *Server) Preempt(id string) error {
	s.mu.Lock()
	known := s.recs[id] != nil
	c := s.running[id]
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("server: unknown job %q", id)
	}
	if err := s.sch.Preempt(id); err != nil {
		return err
	}
	// Interrupt the in-flight slice so the preemption lands at the next
	// barrier instead of the end of the quantum.
	if c != nil {
		c.RequestStop()
	}
	return nil
}

// Cancel terminates a job: queued jobs immediately, running jobs at
// their next barrier (with a final durable checkpoint). Idempotent.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	known := s.recs[id] != nil
	c := s.running[id]
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("server: unknown job %q", id)
	}
	wasRunning, err := s.sch.Cancel(id)
	if err != nil {
		return err
	}
	if wasRunning {
		if c != nil {
			c.RequestStop()
		}
		return nil
	}
	// Queued (or already terminal): reflect the scheduler's state.
	if j, ok := s.sch.Get(id); ok && j.State == sched.Canceled {
		s.withRecord(id, func(r *Record) {
			if r.State == string(sched.Queued) {
				r.State = string(sched.Canceled)
			}
		})
		if h, err := s.hubOf(id); err == nil {
			h.End()
		}
		s.publishJobGauges()
		s.Kick()
	}
	return nil
}

// snapshot returns a copy of one record.
func (s *Server) snapshot(id string) *Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.recs[id]
	if r == nil {
		return nil
	}
	cp := *r
	return &cp
}

// Jobs lists record copies in submit order.
func (s *Server) Jobs() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Usage exposes the scheduler's per-tenant fair-share ledger.
func (s *Server) Usage() []sched.TenantUsage { return s.sch.Usage() }

// Pool exposes the board inventory.
func (s *Server) Pool() []fleet.PoolBoard { return s.pool.Snapshot() }

// PoolBusy is the lifetime leased board time.
func (s *Server) PoolBusy() time.Duration { return s.pool.Busy() }

// Stop drains the daemon: every in-flight slice is asked to stop at its
// next epoch barrier (committing a final durable checkpoint), job rows
// stay as they are on disk — running rows included, which the next New
// re-adopts — and Stop returns when all slice goroutines have exited.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopping = true
	for _, c := range s.running {
		c.RequestStop()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	hubs := s.hubs
	s.hubs = make(map[string]*hub)
	s.mu.Unlock()
	for _, h := range hubs {
		h.Close()
	}
}
