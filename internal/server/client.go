package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the thin HTTP client for the daemon API, shared by cmd/eofctl
// and cmd/eof's -submit mode.
type Client struct {
	// Base is the daemon's base URL (e.g. "http://127.0.0.1:9290").
	Base string
	// Tenant is sent as the X-EOF-Tenant header on every request.
	Tenant string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// do issues a request and decodes a JSON response into out (nil skips the
// body). Non-2xx responses become errors carrying the server's message.
func (c *Client) do(method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a campaign and returns its job status.
func (c *Client) Submit(req SubmitRequest) (*JobStatus, error) {
	var js JobStatus
	if err := c.do(http.MethodPost, "/v1/campaigns", req, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Job fetches one campaign's status.
func (c *Client) Job(id string) (*JobStatus, error) {
	var js JobStatus
	if err := c.do(http.MethodGet, "/v1/campaigns/"+id, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Jobs lists campaigns (tenant == "" lists every tenant's).
func (c *Client) Jobs(tenant string) ([]JobStatus, error) {
	path := "/v1/campaigns"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var out []JobStatus
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel deletes a campaign (idempotent).
func (c *Client) Cancel(id string) error {
	return c.do(http.MethodDelete, "/v1/campaigns/"+id, nil, nil)
}

// Preempt asks the scheduler to requeue a running campaign at its next
// epoch barrier.
func (c *Client) Preempt(id string) error {
	return c.do(http.MethodPost, "/v1/campaigns/"+id+"/preempt", nil, nil)
}

// Pool fetches the board inventory and fair-share ledger.
func (c *Client) Pool() (*PoolStatus, error) {
	var ps PoolStatus
	if err := c.do(http.MethodGet, "/v1/pool", nil, &ps); err != nil {
		return nil, err
	}
	return &ps, nil
}

// Events opens the campaign's NDJSON event stream. The caller must close
// the reader.
func (c *Client) Events(id string) (io.ReadCloser, error) {
	req, err := http.NewRequest(http.MethodGet, c.url("/v1/campaigns/"+id+"/events"), nil)
	if err != nil {
		return nil, err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
		resp.Body.Close()
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return resp.Body, nil
}

// Wait polls until the campaign reaches a terminal state.
func (c *Client) Wait(id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		js, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		if js.State == "done" || js.State == "failed" || js.State == "canceled" {
			return js, nil
		}
		time.Sleep(poll)
	}
}
