package triage

import (
	"fmt"
	"hash/fnv"
	"io"
	"regexp"
	"strings"

	"github.com/eof-fuzz/eof/internal/cpu"
)

// Cluster derives the normalized dedup key for a finding. Fault-backed
// findings hash the fault class plus the normalized innermost frames; log
// findings canonicalize the assert expression or, failing that, the
// signature text with volatile numerics stripped. Two reports with equal
// clusters are the same bug, whatever path the target took to hit it.
func Cluster(f *cpu.Fault, sig string) string {
	if f != nil {
		h := fnv.New64a()
		io.WriteString(h, f.Kind.String())
		for _, fn := range normalFrames(f.Frames) {
			io.WriteString(h, "|")
			io.WriteString(h, fn)
		}
		return fmt.Sprintf("frame:%v:%016x", f.Kind, h.Sum64())
	}
	if expr, ok := strings.CutPrefix(sig, "assert:"); ok {
		return "assert:" + CanonAssert(expr)
	}
	return "sig:" + canonText(sig)
}

// normalFrames reduces a backtrace (innermost first) to the frames that
// identify the bug: the faulting function plus any deeper run of "__"
// kernel-helper frames, capped at three. File and line are dropped — they
// shift with every unrelated source edit — and the public caller above the
// helper chain is excluded, so the same helper fault reached from two API
// entry points lands in one cluster.
func normalFrames(frames []cpu.Frame) []string {
	if len(frames) == 0 {
		return []string{"?"}
	}
	out := []string{frames[0].Func}
	for _, fr := range frames[1:] {
		if len(out) >= 3 || !strings.HasPrefix(fr.Func, "__") {
			break
		}
		out = append(out, fr.Func)
	}
	return out
}

// CanonAssert canonicalizes an assert expression: whitespace runs collapse
// to single spaces so formatting jitter between the source needle and the
// UART banner cannot split (or miss) a cluster.
func CanonAssert(expr string) string {
	return strings.Join(strings.Fields(expr), " ")
}

var (
	hexRun = regexp.MustCompile(`0[xX][0-9a-fA-F]+`)
	numRun = regexp.MustCompile(`[0-9]+`)
)

// canonText normalizes free-form signature text: whitespace collapses and
// addresses / counters are replaced with '#' so per-run numerics (heap
// addresses, slot indices, tick counts) do not mint fresh clusters.
func canonText(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	s = hexRun.ReplaceAllString(s, "#")
	return numRun.ReplaceAllString(s, "#")
}
