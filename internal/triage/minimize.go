package triage

import (
	"github.com/eof-fuzz/eof/internal/prog"
)

// TestFunc replays a candidate program and reports whether it reproduced the
// finding's cluster. The engine supplies it as a closure over one board; an
// error means the board (not the candidate) failed and minimization must
// stop with the best program found so far.
type TestFunc func(*prog.Prog) (bool, error)

// StepFunc observes one minimization probe: the phase ("ddmin" or "args"),
// the candidate that was replayed and whether it still reproduced.
type StepFunc func(phase string, candidate *prog.Prog, hit bool)

// Minimize shrinks p while the finding keeps reproducing under test: first a
// ddmin-style pass over the call sequence (complement reduction with
// granularity doubling), then per-argument simplification (result handles →
// null, constants → zero, buffers emptied). Every probe costs one replay
// from budget; when the budget runs dry the best reproducer found so far is
// returned. p itself is never mutated. Returns the minimized program, the
// number of replays spent, and the first board error if one cut the pass
// short.
func Minimize(p *prog.Prog, test TestFunc, budget int, onStep StepFunc) (*prog.Prog, int, error) {
	m := &minimizer{test: test, budget: budget, onStep: onStep}
	best := m.ddmin(p.Clone())
	if m.err == nil {
		best = m.simplifyArgs(best)
	}
	return best, m.spent, m.err
}

type minimizer struct {
	test   TestFunc
	onStep StepFunc
	budget int
	spent  int
	err    error
}

// probe replays one candidate, spending budget. Returns false once the
// budget is exhausted or the board has failed.
func (m *minimizer) probe(phase string, cand *prog.Prog) bool {
	if m.err != nil || m.spent >= m.budget {
		return false
	}
	m.spent++
	hit, err := m.test(cand)
	if err != nil {
		m.err = err
		return false
	}
	if m.onStep != nil {
		m.onStep(phase, cand, hit)
	}
	return hit
}

// ddmin is the classic delta-debugging loop over the call sequence: partition
// the current best into n chunks, try dropping each chunk (testing the
// complement); on success restart at coarser granularity, otherwise refine
// until chunks are single calls.
func (m *minimizer) ddmin(best *prog.Prog) *prog.Prog {
	n := 2
	for len(best.Calls) >= 2 && n <= len(best.Calls) {
		if m.err != nil || m.spent >= m.budget {
			break
		}
		reduced := false
		size := (len(best.Calls) + n - 1) / n
		for start := 0; start < len(best.Calls); start += size {
			end := start + size
			if end > len(best.Calls) {
				end = len(best.Calls)
			}
			keep := make([]bool, len(best.Calls))
			for i := range keep {
				keep[i] = i < start || i >= end
			}
			cand := prog.Subset(best, keep)
			if len(cand.Calls) == 0 {
				continue
			}
			if m.probe("ddmin", cand) {
				best = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
			if m.err != nil || m.spent >= m.budget {
				return best
			}
		}
		if !reduced {
			if n >= len(best.Calls) {
				break
			}
			n = min(n*2, len(best.Calls))
		}
	}
	return best
}

// simplifyArgs flattens argument structure call by call: a result reference
// becomes a null handle, a non-zero constant becomes zero, a data buffer is
// emptied. Each accepted simplification keeps the cluster reproducing, so
// the surviving arguments are exactly the ones the bug needs.
func (m *minimizer) simplifyArgs(best *prog.Prog) *prog.Prog {
	for ci := 0; ci < len(best.Calls); ci++ {
		for ai := 0; ai < len(best.Calls[ci].Args); ai++ {
			if m.err != nil || m.spent >= m.budget {
				return best
			}
			simpler := simplerArg(best.Calls[ci].Args[ai])
			if simpler == nil {
				continue
			}
			cand := best.Clone()
			cand.Calls[ci].Args[ai] = simpler
			if cand.Validate() != nil {
				continue
			}
			if m.probe("args", cand) {
				best = cand
			}
		}
	}
	return best
}

// simplerArg proposes the next-simpler value for a, or nil if a is already
// minimal.
func simplerArg(a prog.Arg) prog.Arg {
	switch v := a.(type) {
	case *prog.ResultArg:
		return &prog.ConstArg{Val: 0}
	case *prog.ConstArg:
		if v.Val != 0 {
			return &prog.ConstArg{Val: 0}
		}
	case *prog.DataArg:
		if len(v.Data) > 0 {
			return &prog.DataArg{}
		}
	}
	return nil
}
