package triage

import (
	"encoding/json"
	"fmt"
)

// ReproVersion is the current repro-file format version.
const ReproVersion = 1

// Repro is the portable reproducer file: everything needed to confirm a
// finding on another host — target identity, the normalized cluster to match
// against, triage provenance and the minimal program in the JSON form. It is
// written by `eof -repro-out` and consumed by `eof -replay`.
type Repro struct {
	Version int    `json:"version"`
	OS      string `json:"os"`
	Board   string `json:"board"`
	Cluster string `json:"cluster"`
	Sig     string `json:"sig"`
	Kind    string `json:"kind,omitempty"`
	Monitor string `json:"monitor,omitempty"`
	Title   string `json:"title,omitempty"`
	// Reproducibility / ReplayHits / Replays record the original triage
	// verdict so a replay host knows what stability to expect.
	Reproducibility string `json:"reproducibility,omitempty"`
	ReplayHits      int    `json:"replay_hits,omitempty"`
	Replays         int    `json:"replays,omitempty"`
	// OrigCalls / MinCalls record the minimization ratio.
	OrigCalls int `json:"orig_calls,omitempty"`
	MinCalls  int `json:"min_calls,omitempty"`
	// Prog is the minimal program in the prog JSON form.
	Prog json.RawMessage `json:"prog"`
}

// Encode renders the repro file deterministically (indented JSON plus a
// trailing newline, stable field order).
func (r *Repro) Encode() ([]byte, error) {
	if r.Version == 0 {
		r.Version = ReproVersion
	}
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseRepro decodes and validates a repro file. It rejects unknown
// versions, missing target identity and empty programs, so a truncated or
// cross-format file fails here rather than on the board.
func ParseRepro(data []byte) (*Repro, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("triage: bad repro file: %w", err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("triage: repro version %d, want %d", r.Version, ReproVersion)
	}
	if r.OS == "" || r.Board == "" {
		return nil, fmt.Errorf("triage: repro file missing target identity (os=%q board=%q)", r.OS, r.Board)
	}
	if r.Cluster == "" && r.Sig == "" {
		return nil, fmt.Errorf("triage: repro file has neither cluster nor signature")
	}
	if len(r.Prog) == 0 {
		return nil, fmt.Errorf("triage: repro file has no program")
	}
	return &r, nil
}
