// Package triage turns raw crash findings into confirmed, minimal,
// deduplicated reproducers. It owns the three pure pieces of the pipeline —
// signature normalization + clustering, ddmin-style program minimization and
// the portable repro-file format — while the replay mechanics (restoring a
// board, re-running a program, matching the resulting stop) stay with the
// engine that owns the hardware. The package deliberately depends only on
// prog, cpu and trace so core, fleet and bugdb can all build on it without
// cycles.
package triage

// Reproducibility classes assigned after N confirmation replays.
const (
	// ReproStable: every replay reproduced the cluster.
	ReproStable = "stable"
	// ReproFlaky: some, but not all, replays reproduced the cluster.
	ReproFlaky = "flaky"
	// ReproNone: no replay reproduced the cluster.
	ReproNone = "unreproducible"
)

// Classify maps replay hits out of n attempts to a reproducibility class.
func Classify(hits, n int) string {
	switch {
	case n > 0 && hits >= n:
		return ReproStable
	case hits > 0:
		return ReproFlaky
	default:
		return ReproNone
	}
}
