package triage

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzParseRepro throws arbitrary bytes at the repro-file decoder. It must
// never panic, and anything it accepts must re-encode and re-parse to the
// same identity — a corrupted file can only surface as an error, never as a
// replay against the wrong target.
func FuzzParseRepro(f *testing.F) {
	valid, err := (&Repro{
		OS: "rtthread", Board: "stm32h745",
		Cluster: "frame:BusFault:0123456789abcdef",
		Sig:     "BusFault@rt_event_send",
		Prog:    []byte(`{"calls":[{"name":"rt_event_send","args":[{"kind":"const","val":1}]}]}`),
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"os":"rtthread","board":"x","sig":"s","prog":{}}`))
	f.Add([]byte(`not json`))
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ParseRepro(data)
		if err != nil {
			return
		}
		if r.OS == "" || r.Board == "" || len(r.Prog) == 0 {
			t.Fatalf("accepted repro without target identity or program: %+v", r)
		}
		out, err := r.Encode()
		if err != nil {
			t.Fatalf("accepted repro does not re-encode: %v", err)
		}
		r2, err := ParseRepro(out)
		if err != nil {
			t.Fatalf("re-encoded repro does not re-parse: %v", err)
		}
		if r2.OS != r.OS || r2.Board != r.Board || r2.Cluster != r.Cluster || r2.Sig != r.Sig {
			t.Fatalf("identity changed across re-encode:\n%+v\n%+v", r, r2)
		}
		// MarshalIndent re-indents the embedded program, so compare it
		// compacted.
		var pa, pb bytes.Buffer
		if json.Compact(&pa, r.Prog) == nil && json.Compact(&pb, r2.Prog) == nil {
			if pa.String() != pb.String() {
				t.Fatalf("program changed across re-encode: %s -> %s", pa.String(), pb.String())
			}
		}
	})
}
