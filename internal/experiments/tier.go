package experiments

import (
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/fleet"
	"github.com/eof-fuzz/eof/internal/targets"
)

// Tier-experiment pool shape: an all-hardware pool of tierShards boards
// against the same pool widened by tierEmulShards emulated explore shards,
// so the emulation tier's contribution is measured at equal hardware cost.
const (
	tierShards     = 2
	tierEmulShards = 2
	tierSyncEvery  = 2 * time.Minute
)

// tierOSes is the OS sweep of the tiered-execution experiment.
var tierOSes = []string{"freertos", "rtthread", "zephyr"}

// AblationTier (E-tier) measures what the heterogeneous fleet buys: for each
// OS it runs an all-hardware pool and a tiered pool (same hardware width plus
// an emulation explore tier) on the same seeds and budget. The tiered rows
// report both tiers' throughput, the confirmation pipeline's verdict counts
// and the cross-tier divergences — the emulation findings hardware refused
// to ratify, which an emulation-only deployment would have reported as fact.
func AblationTier(opts Options) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E-tier: Emulation explore tier + hardware confirmation (%d hw boards, %d emul shards, %gh x %d runs)",
			tierShards, tierEmulShards, opts.Hours, opts.Runs),
		Columns: []string{
			"OS", "Mode", "HW execs", "Emul execs", "Edges", "Emul edges",
			"Replays", "Confirmed", "Diverged", "Emul execs/board vs hw",
		},
	}
	type job struct {
		os    string
		tiers bool
	}
	jobs := make([]job, 0, len(tierOSes)*2)
	for _, osName := range tierOSes {
		jobs = append(jobs, job{osName, false}, job{osName, true})
	}
	reports := make([]*core.Report, len(jobs)*opts.Runs)
	err := runParallel(len(reports), opts.parallel(), func(i int) error {
		j := jobs[i/opts.Runs]
		info, err := targets.ByName(j.os)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()[j.os])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		fo := fleet.Options{Shards: tierShards, SyncEvery: tierSyncEvery}
		if j.tiers {
			fo.EmulShards = tierEmulShards
		}
		pool, err := fleet.New(cfg, fo)
		if err != nil {
			return err
		}
		defer pool.Close()
		rep, err := pool.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ji, j := range jobs {
		var hwExecs, emExecs, edges, emEdges, replays, confirmed, diverged []float64
		for r := 0; r < opts.Runs; r++ {
			rep := reports[ji*opts.Runs+r]
			edges = append(edges, float64(rep.Edges))
			if len(rep.Tiers) == 2 {
				hw, em := rep.Tiers[0], rep.Tiers[1]
				hwExecs = append(hwExecs, float64(hw.Execs))
				emExecs = append(emExecs, float64(em.Execs))
				emEdges = append(emEdges, float64(em.Edges))
				replays = append(replays, float64(hw.ConfirmReplays))
				confirmed = append(confirmed, float64(hw.Confirmed))
				diverged = append(diverged, float64(hw.Diverged))
			} else {
				hwExecs = append(hwExecs, float64(rep.Stats.Execs))
			}
		}
		mode, emCell, emEdgeCell, repCell, confCell, divCell, speedCell :=
			"all-hw", "-", "-", "-", "-", "-", "-"
		if j.tiers {
			mode = "tiered"
			emCell = fmt.Sprintf("%.1f", mean(emExecs))
			emEdgeCell = fmt.Sprintf("%.1f", mean(emEdges))
			repCell = fmt.Sprintf("%.1f", mean(replays))
			confCell = fmt.Sprintf("%.1f", mean(confirmed))
			divCell = fmt.Sprintf("%.1f", mean(diverged))
			perBoardEm := mean(emExecs) / tierEmulShards
			perBoardHW := mean(hwExecs) / tierShards
			if perBoardHW > 0 {
				speedCell = fmt.Sprintf("%.1fx", perBoardEm/perBoardHW)
			}
		}
		t.Rows = append(t.Rows, []string{
			j.os, mode,
			fmt.Sprintf("%.1f", mean(hwExecs)),
			emCell,
			fmt.Sprintf("%.1f", mean(edges)),
			emEdgeCell, repCell, confCell, divCell, speedCell,
		})
	}
	t.Notes = append(t.Notes,
		"Edges is hardware-tier (ground-truth) coverage; Emul edges is the explore tier's provisional set",
		"every emulation corpus admission and crash is re-executed on a hardware board at the next sync barrier",
		"Confirmed: hardware reproduced the finding; Diverged: it did not (emulation-only coverage or crash, or a hardware-only crash surfaced by the replay)",
		"same seeds and total budget in both modes; the tiered mode adds emulated shards, not hardware")
	return t, nil
}
