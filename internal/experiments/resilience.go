package experiments

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/fleet"
	"github.com/eof-fuzz/eof/internal/targets"
)

// resilienceShards/resilienceSpares are the pool shape of the resilience
// sweep: the paper's practical deployment of a few cheap boards per host,
// with a small hot-spare reserve.
const (
	resilienceShards = 4
	resilienceSpares = 2
)

// AblationResilience (E-resilience) sweeps the per-boot permanent-death rate
// of the virtual boards on a FreeRTOS fleet and reports how much campaign
// throughput the board-health supervisor retains: dead boards are
// quarantined at the next epoch barrier and hot spares take over their
// slots, re-seeded from the shared corpus. Rate 0 is the healthy-fleet
// baseline every other row is normalised against.
func AblationResilience(opts Options) (*Table, error) {
	rates := []float64{0, 0.02, 0.05, 0.10}
	t := &Table{
		Title: fmt.Sprintf("E-resilience: Board death-rate sweep on a FreeRTOS fleet (%d shards + %d spares, %gh x %d runs)",
			resilienceShards, resilienceSpares, opts.Hours, opts.Runs),
		Columns: []string{
			"Death rate", "Execs", "Edges", "Edges/h", "Escalations",
			"Quarantines", "Promotions", "Dead boards", "Edges vs healthy",
		},
	}
	reports := make([]*core.Report, len(rates)*opts.Runs)
	err := runParallel(len(reports), opts.parallel(), func(i int) error {
		rate := rates[i/opts.Runs]
		info, err := targets.ByName("freertos")
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()["freertos"])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		// Zero degrade seed: every board in the pool ages under its own
		// deterministic sequence derived from its shard seed.
		cfg.Degrade = board.DegradeConfig{DeathRate: rate}
		pool, err := fleet.New(cfg, fleet.Options{
			Shards: resilienceShards,
			Spares: resilienceSpares,
		})
		if err != nil {
			return err
		}
		defer pool.Close()
		rep, err := pool.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	var healthyEdges float64
	for ri, rate := range rates {
		var execs, edges, escalations, quarantines, promotions, dead []float64
		for r := 0; r < opts.Runs; r++ {
			rep := reports[ri*opts.Runs+r]
			execs = append(execs, float64(rep.Stats.Execs))
			edges = append(edges, float64(rep.Edges))
			escalations = append(escalations, float64(rep.Stats.RungEscalations))
			quarantines = append(quarantines, float64(len(rep.Quarantines)))
			promoted, deadBoards := 0, 0
			for _, q := range rep.Quarantines {
				if q.Spare >= 0 {
					promoted++
				}
			}
			for _, h := range rep.BoardHealth {
				if h.Dead {
					deadBoards++
				}
			}
			promotions = append(promotions, float64(promoted))
			dead = append(dead, float64(deadBoards))
		}
		if ri == 0 {
			healthyEdges = mean(edges)
		}
		vsHealthy := "-"
		if ri > 0 && healthyEdges > 0 {
			vsHealthy = fmt.Sprintf("%.0f%%", 100*mean(edges)/healthyEdges)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*rate),
			fmt.Sprintf("%.1f", mean(execs)),
			fmt.Sprintf("%.1f", mean(edges)),
			fmt.Sprintf("%.1f", mean(edges)/opts.Hours),
			fmt.Sprintf("%.1f", mean(escalations)),
			fmt.Sprintf("%.1f", mean(quarantines)),
			fmt.Sprintf("%.1f", mean(promotions)),
			fmt.Sprintf("%.1f", mean(dead)),
			vsHealthy,
		})
	}
	t.Notes = append(t.Notes,
		"death rate: per-boot probability of permanent hardware death, drawn per board from its shard seed",
		"quarantines: boards the supervisor retired at an epoch barrier; promotions: hot spares that took over a slot",
		"a quarantined slot loses at most one shard-epoch of fuzzing; the promoted spare resumes from the shared corpus")
	return t, nil
}
