package experiments

import (
	"fmt"
	"sort"

	"github.com/eof-fuzz/eof/internal/bugdb"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/triage"
)

// TriageResult carries the E-triage evaluation: how well the crash-triage
// pipeline confirms and shrinks the Table-2 findings.
type TriageResult struct {
	Table *Table
	// Findings counts triaged findings across every campaign; Reproducible
	// counts those that reproduced at least once on replay.
	Findings     int
	Reproducible int
	// ReproRate is Reproducible/Findings.
	ReproRate float64
	// MedianRatio is the median MinCalls/OrigCalls over reproducible
	// findings (1.0 = minimization never removed a call).
	MedianRatio float64
	// AccountingOK reports whether every campaign's TimeBy — triaging bucket
	// included — summed exactly to its Duration.
	AccountingOK bool
}

// TriageEval runs triage-enabled campaigns on the four evaluated OSes and
// scores the pipeline: repro rate across the planted-bug findings, the
// minimization ratio, and the board-time accounting invariant under the
// extra triaging load.
func TriageEval(opts Options) (*TriageResult, error) {
	type job struct {
		os  string
		run int
	}
	var jobs []job
	for _, osName := range Table2OSes {
		for r := 0; r < opts.Runs; r++ {
			jobs = append(jobs, job{osName, r})
		}
	}
	reports := make([]*core.Report, len(jobs))
	err := runParallel(len(jobs), opts.parallel(), func(i int) error {
		info, err := targets.ByName(jobs[i].os)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()[jobs[i].os])
		cfg.Seed = opts.SeedBase + int64(i)
		cfg.Triage.Enabled = true
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TriageResult{AccountingOK: true}
	// Best outcome per registered bug: keep the most-reproducible, then
	// smallest, finding across runs.
	type outcome struct {
		repro    string
		hits, n  int
		orig, mn int
	}
	best := make(map[int]outcome)
	var ratios []float64
	for _, rep := range reports {
		if rep.TimeBy.Sum() != rep.Duration {
			res.AccountingOK = false
		}
		for _, b := range rep.Bugs {
			res.Findings++
			if b.Reproducibility != triage.ReproNone {
				res.Reproducible++
				if b.OrigCalls > 0 {
					ratios = append(ratios, float64(b.MinCalls)/float64(b.OrigCalls))
				}
			}
			bug, ok := bugdb.Match(b)
			if !ok {
				continue
			}
			o := outcome{repro: b.Reproducibility, hits: b.ReplayHits, n: b.Replays, orig: b.OrigCalls, mn: b.MinCalls}
			if prev, seen := best[bug.ID]; !seen || reproRank(o.repro) > reproRank(prev.repro) ||
				(reproRank(o.repro) == reproRank(prev.repro) && o.mn < prev.mn) {
				best[bug.ID] = o
			}
		}
	}
	if res.Findings > 0 {
		res.ReproRate = float64(res.Reproducible) / float64(res.Findings)
	}
	res.MedianRatio = median(ratios)

	t := &Table{
		Title:   fmt.Sprintf("E-triage: replay confirmation and minimization of Table-2 findings (%gh x %d runs)", opts.Hours, opts.Runs),
		Columns: []string{"#", "Target OS", "Operations", "Repro", "Replays", "Calls orig->min"},
	}
	for _, bug := range bugdb.All() {
		o, found := best[bug.ID]
		repro, replays, calls := "-", "-", "-"
		if found {
			repro = o.repro
			replays = fmt.Sprintf("%d/%d", o.hits, o.n)
			calls = fmt.Sprintf("%d -> %d", o.orig, o.mn)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bug.ID), bug.OS, bug.Op, repro, replays, calls,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("findings triaged: %d, reproducible: %d (%.0f%%, target >=90%%)",
			res.Findings, res.Reproducible, res.ReproRate*100),
		fmt.Sprintf("median minimization ratio: %.0f%% of original calls (target <=50%%)", res.MedianRatio*100),
		fmt.Sprintf("board-time accounting exact under triage: %v", res.AccountingOK),
	)
	res.Table = t
	return res, nil
}

// reproRank orders reproducibility verdicts for best-outcome selection.
func reproRank(r string) int {
	switch r {
	case triage.ReproStable:
		return 2
	case triage.ReproFlaky:
		return 1
	default:
		return 0
	}
}

// median returns the middle value of xs (0 when empty).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
