// Package experiments regenerates every table and figure of the paper's
// evaluation section against the simulated hardware substrate. Each
// experiment returns a structured result with text-table and CSV renderers;
// cmd/experiments and the repository benchmarks drive them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Options scales an experiment run. The paper uses 24-hour campaigns
// repeated 5 times; tests and benchmarks use smaller settings, which
// preserves the comparisons' shape at lower confidence.
type Options struct {
	// Hours is the campaign length in virtual hours.
	Hours float64
	// Runs is the number of repetitions per configuration.
	Runs int
	// SeedBase offsets the per-run seeds.
	SeedBase int64
	// Parallel bounds concurrent campaigns on the host (each campaign has
	// its own board and clock). <=0 means GOMAXPROCS-ish default of 4.
	Parallel int
	// Shards > 1 runs the EOF configurations in fleet mode on a pool of
	// that many boards (budget = total board time); baselines stay solo.
	Shards int
}

// PaperOptions reproduces the evaluation's scale (long host runtime).
func PaperOptions() Options {
	return Options{Hours: 24, Runs: 5, SeedBase: 1000, Parallel: 4}
}

// QuickOptions is a fast profile for tests and demos.
func QuickOptions() Options {
	return Options{Hours: 0.25, Runs: 1, SeedBase: 1, Parallel: 2}
}

func (o Options) budget() time.Duration {
	return time.Duration(o.Hours * float64(time.Hour))
}

func (o Options) parallel() int {
	if o.Parallel <= 0 {
		return 4
	}
	return o.Parallel
}

// Table is a rendered result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are rendered under the table.
	Notes []string
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for the cell vocabulary these tables use).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is one coverage-over-time curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (time, coverage) sample, with min/max across runs.
type Point struct {
	At   time.Duration
	Mean float64
	Min  float64
	Max  float64
}

// Figure is a rendered coverage-growth figure.
type Figure struct {
	Title  string
	Series []Series
}

// CSV renders the figure's series in long form.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,hours,mean,min,max\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%.3f,%.1f,%.1f,%.1f\n", s.Label, p.At.Hours(), p.Mean, p.Min, p.Max)
		}
	}
	return b.String()
}

// Render draws an ASCII chart of the figure (mean curves).
func (f *Figure) Render() string {
	const width, height = 72, 16
	maxY := 1.0
	var maxX time.Duration
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Max > maxY {
				maxY = p.Max
			}
			if p.At > maxX {
				maxX = p.At
			}
		}
	}
	if maxX == 0 {
		maxX = time.Hour
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+ox#@"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for _, p := range s.Points {
			x := int(float64(p.At) / float64(maxX) * float64(width-1))
			y := height - 1 - int(p.Mean/maxY*float64(height-1))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: 0..%.0f branches, x: 0..%.1fh)\n", f.Title, maxY, maxX.Hours())
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Label)
	}
	return b.String()
}

// mergeSeries aggregates multiple runs' coverage series into mean/min/max
// points on a common time grid.
func mergeSeries(label string, runs [][]Point) Series {
	if len(runs) == 0 {
		return Series{Label: label}
	}
	// Collect the union of timestamps.
	stamps := map[time.Duration]bool{}
	for _, r := range runs {
		for _, p := range r {
			stamps[p.At] = true
		}
	}
	ordered := make([]time.Duration, 0, len(stamps))
	for t := range stamps {
		ordered = append(ordered, t)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	out := Series{Label: label}
	for _, t := range ordered {
		var sum, minV, maxV float64
		minV = -1
		for _, r := range runs {
			v := valueAt(r, t)
			sum += v
			if minV < 0 || v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		out.Points = append(out.Points, Point{
			At:   t,
			Mean: sum / float64(len(runs)),
			Min:  minV,
			Max:  maxV,
		})
	}
	return out
}

// valueAt samples a step curve at time t (last value at or before t).
func valueAt(points []Point, t time.Duration) float64 {
	v := 0.0
	for _, p := range points {
		if p.At > t {
			break
		}
		v = p.Mean
	}
	return v
}

// mean computes the average of xs.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// improvement renders "+X%" of base over other.
func improvement(base, other float64) string {
	if other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%+.2f%%", (base-other)/other*100)
}

// runParallel executes jobs with bounded host parallelism, preserving order.
func runParallel(n, parallel int, job func(i int) error) error {
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, parallel)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; done <- i }()
			errs[i] = job(i)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
