package experiments

import (
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/fleet"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/targets"
	"github.com/eof-fuzz/eof/internal/trace"
)

// TimeAccounting (E-time) breaks the board-time budget of representative
// FreeRTOS configurations into the trace layer's categories: target
// execution, state restoration, image reflashing, debug-link overhead and
// fleet sync-barrier idling. It quantifies the paper's throughput argument
// directly — where the board's seconds actually go, and how the split shifts
// on degraded probe firmware, a flaky adapter, and a board pool.
func TimeAccounting(opts Options) (*Table, error) {
	type config struct {
		name   string
		legacy bool
		faults float64
		shards int
	}
	configs := []config{
		{name: "EOF"},
		{name: "EOF legacy-link", legacy: true},
		{name: "EOF 5% link faults", faults: 0.05},
		{name: "EOF 4-board fleet", shards: 4},
	}
	t := &Table{
		Title: fmt.Sprintf("E-time: Board-time accounting on FreeRTOS (%gh x %d runs)", opts.Hours, opts.Runs),
		Columns: []string{
			"Config", "Execs", "Executing", "Restoring", "Reflashing",
			"Link overhead", "Sync barrier",
		},
	}
	reports := make([]*core.Report, len(configs)*opts.Runs)
	err := runParallel(len(reports), opts.parallel(), func(i int) error {
		c := configs[i/opts.Runs]
		info, err := targets.ByName("freertos")
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()["freertos"])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		cfg.LegacyLink = c.legacy
		if c.faults > 0 {
			cfg.LinkFaults = link.Profile(c.faults, 0)
		}
		if c.shards > 1 {
			pool, err := fleet.New(cfg, fleet.Options{Shards: c.shards})
			if err != nil {
				return err
			}
			defer pool.Close()
			// Same total board time as the solo rows, spread over the pool.
			rep, err := pool.Run(opts.budget() * time.Duration(c.shards))
			if err != nil {
				return err
			}
			reports[i] = rep
			return nil
		}
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range configs {
		var execs []float64
		var by [trace.NumCategories][]float64
		for r := 0; r < opts.Runs; r++ {
			rep := reports[ci*opts.Runs+r]
			execs = append(execs, float64(rep.Stats.Execs))
			sum := rep.TimeBy.Sum()
			for _, cat := range trace.Categories() {
				share := 0.0
				if sum > 0 {
					share = float64(rep.TimeBy.Of(cat)) / float64(sum)
				}
				by[cat] = append(by[cat], share)
			}
		}
		row := []string{c.name, fmt.Sprintf("%.1f", mean(execs))}
		for _, cat := range trace.Categories() {
			row = append(row, fmt.Sprintf("%.1f%%", 100*mean(by[cat])))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"shares of total board time; per campaign the categories sum to the report Duration exactly (x shards in fleet mode)",
		"sync barrier: board idle time at fleet epoch barriers waiting for the slowest sibling; zero outside fleet mode",
		"fleet row runs the same total board time as the solo rows, split across 4 boards")
	return t, nil
}
