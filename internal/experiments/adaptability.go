package experiments

import (
	"time"

	"github.com/eof-fuzz/eof/internal/baselines/gdbfuzz"
	"github.com/eof-fuzz/eof/internal/baselines/shift"
	"github.com/eof-fuzz/eof/internal/baselines/tardis"
	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/targets"
)

// probeBudget is the tiny campaign used to verify a support cell.
const probeBudget = 5 * time.Second

// hardwareBoard maps an architecture to the catalogue's hardware board.
func hardwareBoard(arch string) *board.Spec {
	switch arch {
	case "arm":
		return boards.STM32H745()
	case "riscv":
		return boards.ESP32C3()
	default:
		return nil
	}
}

// Table1 reproduces the supported-target matrix. Cells marked ✓ are
// *verified* by actually booting the combination and running a short probe
// campaign in this framework; cells the paper claims for architectures this
// reproduction has no board model for (PowerPC, MIPS, MSP430) render as ✓†.
func Table1() (*Table, error) {
	t := &Table{
		Title:   "Table 1: Supported targets (EOF vs GDBFuzz, Tardis, SHIFT)",
		Columns: []string{"Target Systems", "Arch", "EOF", "GDBFuzz", "Tardis", "SHIFT"},
		Notes: []string{
			"✓ verified by booting the target and running a probe campaign in this framework",
			"✓† claimed by the corresponding paper for a platform this reproduction has no board model for",
		},
	}

	// Paper-claimed capability matrix for platforms outside the simulation.
	type row struct {
		system, arch                   string
		eof, gdbfuzzC, tardisC, shiftC string
		probeEOF, probeTardis, probeSh bool
		probeGDB                       bool
		osName                         string
	}
	rows := []row{
		{"FreeRTOS", "ARM", "", "-", "", "", true, true, true, false, "freertos"},
		{"FreeRTOS", "RISC-V", "", "-", "", "", true, true, true, false, "freertos"},
		{"FreeRTOS", "Power PC", "-", "-", "-", "✓†", false, false, false, false, "freertos"},
		{"FreeRTOS", "MIPS", "-", "-", "-", "✓†", false, false, false, false, "freertos"},
		{"RTThread", "ARM", "", "-", "", "-", true, true, false, false, "rtthread"},
		{"Nuttx", "ARM", "", "-", "", "-", true, true, false, false, "nuttx"},
		{"Zephyr", "ARM", "", "-", "", "-", true, true, false, false, "zephyr"},
		{"Applications", "ARM", "", "", "-", "", true, false, true, true, "freertos"},
		{"Applications", "RISC-V", "", "-", "-", "", true, false, true, false, "freertos"},
		{"Applications", "Power PC", "-", "-", "-", "✓†", false, false, false, false, "freertos"},
		{"Applications", "MIPS", "-", "-", "-", "✓†", false, false, false, false, "freertos"},
		{"Applications", "MSP430", "-", "✓†", "-", "-", false, false, false, false, "freertos"},
	}

	for _, r := range rows {
		arch := map[string]string{"ARM": "arm", "RISC-V": "riscv"}[r.arch]
		eof := r.eof
		if r.probeEOF {
			appLevel := r.system == "Applications"
			if probeEOF(r.osName, arch, appLevel) {
				eof = "✓"
			} else {
				eof = "-"
			}
		}
		tc := r.tardisC
		if r.probeTardis {
			if probeTardis(r.osName, arch) {
				tc = "✓"
			} else {
				tc = "-"
			}
		}
		sc := r.shiftC
		if r.probeSh {
			if probeShift(r.osName, arch, r.system == "Applications") {
				sc = "✓"
			} else {
				sc = "-"
			}
		}
		gc := r.gdbfuzzC
		if r.probeGDB {
			if probeGDBFuzz(r.osName, arch) {
				gc = "✓"
			} else {
				gc = "-"
			}
		}
		t.Rows = append(t.Rows, []string{r.system, r.arch, eof, gc, tc, sc})
	}
	return t, nil
}

func probeEOF(osName, arch string, appLevel bool) bool {
	info, err := targets.ByName(osName)
	if err != nil {
		return false
	}
	spec := hardwareBoard(arch)
	if spec == nil {
		return false
	}
	cfg := core.DefaultConfig(info, spec)
	cfg.SampleEvery = time.Minute
	if appLevel {
		cfg.CallFilter = []string{"http_server_init", "http_server_handle"}
		cfg.CovModules = []string{"app/http"}
	}
	e, err := core.NewEngine(cfg)
	if err != nil {
		return false
	}
	defer e.Close()
	rep, err := e.Run(probeBudget)
	return err == nil && rep != nil
}

func probeTardis(osName, arch string) bool {
	info, err := targets.ByName(osName)
	if err != nil {
		return false
	}
	var spec *board.Spec
	switch arch {
	case "arm":
		spec = boards.QEMUVirt()
	case "riscv":
		spec = boards.QEMUVirtRISCV()
	default:
		return false
	}
	cfg := tardis.DefaultConfig(info, spec)
	rep, err := tardis.Run(cfg, probeBudget)
	return err == nil && rep != nil
}

func probeShift(osName, arch string, appLevel bool) bool {
	if !appLevel && osName != "freertos" {
		return false
	}
	info, err := targets.ByName("freertos")
	if err != nil {
		return false
	}
	spec := hardwareBoard(arch)
	if spec == nil {
		return false
	}
	entry, init := "json_parse", ""
	var initArgs []uint64
	if appLevel {
		entry, init = "http_server_handle", "http_server_init"
		initArgs = []uint64{8080}
	}
	cfg := shift.Config{
		OS: info, Board: spec, Seed: 1,
		Entry: entry, Init: init, InitArgs: initArgs,
		Modules: []string{"app/http", "lib/json"},
		Seeds:   [][]byte{[]byte(`{"a":1}`)},
	}
	rep, err := shift.Run(cfg, probeBudget)
	return err == nil && rep != nil
}

func probeGDBFuzz(osName, arch string) bool {
	if arch != "arm" {
		return false // the tool's published ports: ARM-class and MSP430 MCUs
	}
	info, err := targets.ByName(osName)
	if err != nil {
		return false
	}
	cfg := gdbfuzz.Config{
		OS: info, Board: hardwareBoard(arch), Seed: 1,
		Entry: "http_server_handle", Init: "http_server_init", InitArgs: []uint64{8080},
		Modules: []string{"app/http"},
		Seeds:   [][]byte{[]byte("GET / HTTP/1.1\r\n\r\n")},
	}
	rep, err := gdbfuzz.Run(cfg, probeBudget)
	return err == nil && rep != nil
}
