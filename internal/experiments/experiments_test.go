package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func quick() Options {
	return Options{Hours: 0.2, Runs: 1, SeedBase: 11, Parallel: 4}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"x", "y"}, {"longer", "z"}},
		Notes:   []string{"note text"},
	}
	out := tab.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer") || !strings.Contains(out, "note:") {
		t.Fatalf("render:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestMergeSeries(t *testing.T) {
	runs := [][]Point{
		{{At: time.Minute, Mean: 10}, {At: 2 * time.Minute, Mean: 20}},
		{{At: time.Minute, Mean: 30}, {At: 3 * time.Minute, Mean: 40}},
	}
	s := mergeSeries("x", runs)
	if len(s.Points) != 3 {
		t.Fatalf("points: %+v", s.Points)
	}
	if s.Points[0].Mean != 20 || s.Points[0].Min != 10 || s.Points[0].Max != 30 {
		t.Fatalf("first point: %+v", s.Points[0])
	}
	// At 2min, run 2 still reads 30 (step semantics).
	if s.Points[1].Mean != 25 {
		t.Fatalf("second point: %+v", s.Points[1])
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := &Figure{
		Title: "fig",
		Series: []Series{{
			Label:  "EOF",
			Points: []Point{{At: time.Hour, Mean: 100, Min: 90, Max: 110}},
		}},
	}
	if !strings.Contains(f.Render(), "EOF") {
		t.Fatal("render missing series label")
	}
	if !strings.Contains(f.CSV(), "EOF,1.000,100.0,90.0,110.0") {
		t.Fatalf("csv:\n%s", f.CSV())
	}
}

func TestMemoryOverheadShape(t *testing.T) {
	tab, err := MemoryOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Every OS must land in the paper's plausible band (2–15%).
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("bad pct %q", row[3])
		}
		if v < 2 || v > 15 {
			t.Errorf("%s instrumentation overhead %.2f%% outside band", row[0], v)
		}
	}
	t.Logf("\n%s", tab.Render())
}

func TestExecOverheadShape(t *testing.T) {
	tab, err := ExecOverhead(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Instrumentation must slow execution down, not speed it up.
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("bad pct %q", row[3])
		}
		if v < 0 {
			t.Errorf("%s: negative execution overhead %q", row[0], row[3])
		}
	}
	t.Logf("\n%s", tab.Render())
}

func TestTable2Quick(t *testing.T) {
	res, err := Table2(Options{Hours: 0.3, Runs: 1, SeedBase: 33, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFound == 0 {
		t.Fatal("no registered bugs found even in the quick profile")
	}
	t.Logf("found %d/19 registered bugs in the quick profile\n%s", res.TotalFound, res.Table.Render())
}

func TestAblationLinkFaultsShape(t *testing.T) {
	tab, err := AblationLinkFaults(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	clean, faulty := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if clean[5] != "0.0" || clean[6] != "0.0" {
		t.Fatalf("fault-free row reports retries/reconnects: %v", clean)
	}
	if faulty[5] == "0.0" {
		t.Fatalf("10%% fault row absorbed nothing: %v", faulty)
	}
	t.Logf("\n%s", tab.Render())
}

func TestAblationResilienceShape(t *testing.T) {
	tab, err := AblationResilience(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	healthy := tab.Rows[0]
	// Columns: rate, execs, edges, edges/h, escalations, quarantines,
	// promotions, dead boards, vs healthy.
	if healthy[5] != "0.0" || healthy[7] != "0.0" {
		t.Fatalf("healthy row reports quarantines/dead boards: %v", healthy)
	}
	if healthy[8] != "-" {
		t.Fatalf("healthy row should not normalise against itself: %v", healthy)
	}
	t.Logf("\n%s", tab.Render())
}

func TestTriageEvalQuick(t *testing.T) {
	res, err := TriageEval(Options{Hours: 0.35, Runs: 1, SeedBase: 1234, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Findings == 0 {
		t.Fatal("no findings triaged even in the quick profile")
	}
	if !res.AccountingOK {
		t.Fatal("board-time accounting broke under triage load")
	}
	// The acceptance bars from the paper's triage protocol: at least 90% of
	// findings confirm on replay and the median minimized program is at most
	// half the original.
	if res.ReproRate < 0.9 {
		t.Fatalf("repro rate %.0f%% below the 90%% bar (%d/%d)", res.ReproRate*100, res.Reproducible, res.Findings)
	}
	if res.MedianRatio > 0.5 {
		t.Fatalf("median minimization ratio %.0f%% above the 50%% bar", res.MedianRatio*100)
	}
	t.Logf("\n%s", res.Table.Render())
}

func TestAblationTierShape(t *testing.T) {
	tab, err := AblationTier(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if len(tab.Rows) != len(tierOSes)*2 {
		t.Fatalf("rows: %d\n%s", len(tab.Rows), out)
	}
	for i, row := range tab.Rows {
		wantMode := "all-hw"
		if i%2 == 1 {
			wantMode = "tiered"
		}
		if row[1] != wantMode {
			t.Fatalf("row %d mode %q, want %q\n%s", i, row[1], wantMode, out)
		}
		if wantMode == "all-hw" && row[3] != "-" {
			t.Fatalf("all-hw row carries emulation execs: %v", row)
		}
		if wantMode == "tiered" && (row[3] == "-" || row[6] == "-") {
			t.Fatalf("tiered row missing tier columns: %v", row)
		}
	}
	t.Log("\n" + out)
}

func TestAblationPersistShape(t *testing.T) {
	tab, err := AblationPersist(quick())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	if len(tab.Rows) != len(persistOSes)*4 {
		t.Fatalf("rows: %d\n%s", len(tab.Rows), out)
	}
	for i, row := range tab.Rows {
		mode := []string{"fresh", "persist", "resume", "cold"}[i%4]
		if row[1] != mode {
			t.Fatalf("row %d mode %q, want %q\n%s", i, row[1], mode, out)
		}
		switch mode {
		case "fresh":
			if row[5] != "-" || row[4] != "0.0" {
				t.Fatalf("fresh row carries store columns: %v", row)
			}
		case "persist":
			// The store must not perturb the campaign: identical coverage.
			if row[5] != "+0.00%" {
				t.Fatalf("persist row diverged from fresh: %v\n%s", row, out)
			}
			if row[4] == "0.0" {
				t.Fatalf("persist row committed no checkpoints: %v", row)
			}
		case "resume":
			if row[4] == "0.0" {
				t.Fatalf("resume row committed no checkpoints: %v", row)
			}
		}
	}
	t.Log("\n" + out)
}
