package experiments

import (
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/targets"
)

// OverheadOSes are the targets of the §5.5 overhead measurements.
var OverheadOSes = []string{"nuttx", "rtthread", "zephyr", "freertos"}

// MemoryOverhead reproduces §5.5.1: kernel image sizes with and without
// instrumentation.
func MemoryOverhead() (*Table, error) {
	t := &Table{
		Title:   "§5.5.1: Memory overhead of instrumentation (kernel image size)",
		Columns: []string{"Target OS", "Plain (MB)", "Instrumented (MB)", "Overhead"},
	}
	var sum float64
	for _, osName := range OverheadOSes {
		info, err := targets.ByName(osName)
		if err != nil {
			return nil, err
		}
		spec := evalBoards()[osName]
		plain, err := info.BuildImages(spec, false)
		if err != nil {
			return nil, err
		}
		instr, err := info.BuildImages(spec, true)
		if err != nil {
			return nil, err
		}
		p := float64(len(plain.Kernel))
		q := float64(len(instr.Kernel))
		ovh := (q - p) / p * 100
		sum += ovh
		t.Rows = append(t.Rows, []string{
			displayName(osName),
			fmt.Sprintf("%.3f", p/1e6),
			fmt.Sprintf("%.3f", q/1e6),
			fmt.Sprintf("%.2f%%", ovh),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average overhead: %.2f%%", sum/float64(len(OverheadOSes))))
	return t, nil
}

// ExecWindow is the §5.5.2 measurement window.
const ExecWindow = 10 * time.Minute

// ExecOverhead reproduces §5.5.2: payloads executed in ten virtual minutes
// with and without instrumentation.
func ExecOverhead(opts Options) (*Table, error) {
	t := &Table{
		Title:   "§5.5.2: Execution overhead of instrumentation (payloads per 10 min)",
		Columns: []string{"Target OS", "Plain", "Instrumented", "Overhead"},
	}
	type cell struct{ plain, instr []float64 }
	cells := make(map[string]*cell)
	type job struct {
		os    string
		instr bool
		run   int
	}
	var jobs []job
	for _, osName := range OverheadOSes {
		cells[osName] = &cell{}
		for _, instr := range []bool{false, true} {
			for r := 0; r < opts.Runs; r++ {
				jobs = append(jobs, job{osName, instr, r})
			}
		}
	}
	execs := make([]float64, len(jobs))
	err := runParallel(len(jobs), opts.parallel(), func(i int) error {
		info, err := targets.ByName(jobs[i].os)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()[jobs[i].os])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		cfg.Instrumented = jobs[i].instr
		// Isolate the instrumentation cost: identical generation behaviour
		// on both sides (guidance needs coverage, which the plain image
		// cannot provide).
		cfg.FeedbackGuided = false
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(ExecWindow)
		if err != nil {
			return err
		}
		execs[i] = float64(rep.Stats.Execs)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		if j.instr {
			cells[j.os].instr = append(cells[j.os].instr, execs[i])
		} else {
			cells[j.os].plain = append(cells[j.os].plain, execs[i])
		}
	}
	var sum float64
	for _, osName := range OverheadOSes {
		p := mean(cells[osName].plain)
		q := mean(cells[osName].instr)
		ovh := 0.0
		if p > 0 {
			ovh = (p - q) / p * 100
		}
		sum += ovh
		t.Rows = append(t.Rows, []string{
			displayName(osName),
			fmt.Sprintf("%.1f", p),
			fmt.Sprintf("%.1f", q),
			fmt.Sprintf("%.2f%%", ovh),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average overhead: %.2f%%", sum/float64(len(OverheadOSes))))
	return t, nil
}
