package experiments

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/targets"
)

// AblationWatchdogs (E7) disables the liveness mechanisms one at a time on
// a crash-heavy target and reports execution throughput and the manual
// interventions a human operator would have had to perform.
func AblationWatchdogs(opts Options) (*Table, error) {
	configs := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"full watchdogs", nil},
		{"no PC-stall", func(c *core.Config) { c.Watchdogs.PCStall = false }},
		{"no connection-timeout", func(c *core.Config) { c.Watchdogs.ConnectionTimeout = false }},
		{"no exec-timeout", func(c *core.Config) { c.Watchdogs.ExecTimeout = 0 }},
		{"none", func(c *core.Config) { c.Watchdogs = core.Watchdogs{} }},
	}
	t := &Table{
		Title:   fmt.Sprintf("E7: Watchdog ablation on RT-Thread (%gh x %d runs)", opts.Hours, opts.Runs),
		Columns: []string{"Configuration", "Execs", "Edges", "Restores", "Restore reasons", "Manual interventions", "Bugs"},
	}
	reports := make([]*core.Report, len(configs)*opts.Runs)
	err := runParallel(len(reports), opts.parallel(), func(i int) error {
		c := configs[i/opts.Runs]
		info, err := targets.ByName("rtthread")
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()["rtthread"])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		if c.tweak != nil {
			c.tweak(&cfg)
		}
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range configs {
		var execs, edges, restores, manual, bugs []float64
		var merged core.Stats
		for r := 0; r < opts.Runs; r++ {
			rep := reports[ci*opts.Runs+r]
			execs = append(execs, float64(rep.Stats.Execs))
			edges = append(edges, float64(rep.Edges))
			restores = append(restores, float64(rep.Stats.Restores))
			manual = append(manual, float64(rep.Stats.ManualInterventions))
			bugs = append(bugs, float64(len(rep.Bugs)))
			merged.Merge(rep.Stats)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.1f", mean(execs)),
			fmt.Sprintf("%.1f", mean(edges)),
			fmt.Sprintf("%.1f", mean(restores)),
			merged.RestoreReasons(),
			fmt.Sprintf("%.1f", mean(manual)),
			fmt.Sprintf("%.1f", mean(bugs)),
		})
	}
	t.Notes = append(t.Notes,
		"manual interventions: livelocks broken only by the hard continue cap",
		"restore reasons: reason=count totals across runs (which watchdog or monitor triggered each restoration)")
	return t, nil
}

// AblationGeneration (E8) contrasts API-aware generation against AFL-style
// random arguments, and feedback guidance against none, on the same target.
func AblationGeneration(opts Options) (*Table, error) {
	configs := []struct {
		name  string
		tweak func(*core.Config)
	}{
		{"API-aware + feedback (EOF)", nil},
		{"API-aware, no feedback (EOF-nf)", func(c *core.Config) { c.FeedbackGuided = false }},
		{"random args + feedback", func(c *core.Config) { c.APIAware = false }},
		{"random args, no feedback (AFL-style)", func(c *core.Config) {
			c.APIAware = false
			c.FeedbackGuided = false
		}},
	}
	t := &Table{
		Title:   fmt.Sprintf("E8: Generation-guidance ablation on FreeRTOS (%gh x %d runs)", opts.Hours, opts.Runs),
		Columns: []string{"Configuration", "Execs", "Edges", "Bugs", "Restores"},
	}
	reports := make([]*core.Report, len(configs)*opts.Runs)
	err := runParallel(len(reports), opts.parallel(), func(i int) error {
		c := configs[i/opts.Runs]
		info, err := targets.ByName("freertos")
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()["freertos"])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		if c.tweak != nil {
			c.tweak(&cfg)
		}
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range configs {
		var execs, edges, bugs, restores []float64
		for r := 0; r < opts.Runs; r++ {
			rep := reports[ci*opts.Runs+r]
			execs = append(execs, float64(rep.Stats.Execs))
			edges = append(edges, float64(rep.Edges))
			bugs = append(bugs, float64(len(rep.Bugs)))
			restores = append(restores, float64(rep.Stats.Restores))
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%.1f", mean(execs)),
			fmt.Sprintf("%.1f", mean(edges)),
			fmt.Sprintf("%.1f", mean(bugs)),
			fmt.Sprintf("%.1f", mean(restores)),
		})
	}
	return t, nil
}
