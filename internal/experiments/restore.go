package experiments

import (
	"fmt"
	"time"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/targets"
)

// restoreOSes is the OS sweep of the delta-restore ablation — every evaluated
// target, so the saving is shown to be mechanism-level, not a quirk of one
// kernel's restore mix.
var restoreOSes = []string{"freertos", "rtthread", "nuttx", "zephyr", "pokos"}

// AblationRestore (E-restore) compares classic full restoration (reboot, and
// reflash+reboot when the image is damaged) against the snapshot/delta rung
// on every evaluated OS: same seeds, same budget, Snapshots off vs on. The
// headline column is the mean per-restore board-time cost; the throughput
// columns show where the saved time went.
func AblationRestore(opts Options) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E-restore: Snapshot/delta state restoration vs full restoration (%gh x %d runs)",
			opts.Hours, opts.Runs),
		Columns: []string{
			"OS", "Mode", "Execs", "Restores", "Delta", "Restore cost",
			"ms/restore", "Bytes shipped", "Execs vs full",
		},
	}
	type job struct {
		os   string
		snap bool
	}
	jobs := make([]job, 0, len(restoreOSes)*2)
	for _, osName := range restoreOSes {
		jobs = append(jobs, job{osName, false}, job{osName, true})
	}
	reports := make([]*core.Report, len(jobs)*opts.Runs)
	err := runParallel(len(reports), opts.parallel(), func(i int) error {
		j := jobs[i/opts.Runs]
		info, err := targets.ByName(j.os)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()[j.os])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		cfg.Snapshots = j.snap
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ji, j := range jobs {
		var execs, restores, deltas, cost, perRestore, shipped []float64
		for r := 0; r < opts.Runs; r++ {
			rep := reports[ji*opts.Runs+r]
			// Restore cost is everything the classic path pays that the
			// delta rung avoids: the restoring bucket plus in-restore
			// reflash transfers.
			c := rep.TimeBy.Restoring + rep.TimeBy.Reflashing
			execs = append(execs, float64(rep.Stats.Execs))
			restores = append(restores, float64(rep.Stats.Restores))
			deltas = append(deltas, float64(rep.Stats.DeltaRestores))
			cost = append(cost, float64(c))
			if rep.Stats.Restores > 0 {
				perRestore = append(perRestore, float64(c)/float64(rep.Stats.Restores)/float64(time.Millisecond))
			}
			shipped = append(shipped, float64(rep.Stats.RestoreBytesShipped))
		}
		mode := "full"
		if j.snap {
			mode = "snapshot"
		}
		vsFull := "-"
		if j.snap {
			var fullExecs []float64
			for r := 0; r < opts.Runs; r++ {
				fullExecs = append(fullExecs, float64(reports[(ji-1)*opts.Runs+r].Stats.Execs))
			}
			vsFull = improvement(mean(execs), mean(fullExecs))
		}
		t.Rows = append(t.Rows, []string{
			j.os, mode,
			fmt.Sprintf("%.1f", mean(execs)),
			fmt.Sprintf("%.1f", mean(restores)),
			fmt.Sprintf("%.1f", mean(deltas)),
			time.Duration(mean(cost)).Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", mean(perRestore)),
			fmt.Sprintf("%.0f", mean(shipped)),
			vsFull,
		})
	}
	t.Notes = append(t.Notes,
		"restore cost: restoring + reflashing board time; ms/restore is that cost over the restore count",
		"delta: restores satisfied by one vRestore round trip shipping only dirty state (snapshot rows)",
		"same seeds in both modes, so the restore triggers the campaigns face are comparable")
	return t, nil
}
