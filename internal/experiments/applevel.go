package experiments

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/baselines/gdbfuzz"
	"github.com/eof-fuzz/eof/internal/baselines/shift"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/targets"
)

// appModule describes one application-level target of Table 4.
type appModule struct {
	Name       string
	EntryAPI   string
	InitAPI    string
	InitArgs   []uint64
	CallFilter []string
	CovModules []string
	Seeds      [][]byte
}

// appModules returns the two Table-4 targets, both FreeRTOS components.
func appModules() []appModule {
	return []appModule{
		{
			Name:       "HTTP Server",
			EntryAPI:   "http_server_handle",
			InitAPI:    "http_server_init",
			InitArgs:   []uint64{8080},
			CallFilter: []string{"http_server_init", "http_server_handle"},
			CovModules: []string{"app/http"},
			Seeds:      [][]byte{[]byte("GET / HTTP/1.1\r\n\r\n")},
		},
		{
			Name:       "JSON",
			EntryAPI:   "json_parse",
			InitAPI:    "",
			CallFilter: []string{"json_parse", "json_encode", "json_free"},
			CovModules: []string{"lib/json"},
			Seeds:      [][]byte{[]byte(`{"a":1}`)},
		},
	}
}

// AppLevelResult carries Table 4 and Figure 8.
type AppLevelResult struct {
	Table   *Table
	Figures []*Figure
	// Edges[module][tool] holds per-run final edge counts.
	Edges map[string]map[string][]float64
}

type appJob struct {
	mod  appModule
	tool string
	run  int
}

// Table4 runs the application-level comparison: EOF (restricted to the
// module's APIs, instrumentation confined to the module), GDBFuzz and SHiFT
// on the same hardware board.
func Table4(opts Options) (*AppLevelResult, error) {
	var jobs []appJob
	for _, mod := range appModules() {
		for _, tool := range []string{"EOF", "GDBFuzz", "SHIFT"} {
			for r := 0; r < opts.Runs; r++ {
				jobs = append(jobs, appJob{mod, tool, r})
			}
		}
	}
	reports := make([]*core.Report, len(jobs))
	err := runParallel(len(jobs), opts.parallel(), func(i int) error {
		rep, err := runAppJob(jobs[i], opts)
		if err != nil {
			return fmt.Errorf("%s/%s run %d: %w", jobs[i].mod.Name, jobs[i].tool, jobs[i].run, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &AppLevelResult{Edges: make(map[string]map[string][]float64)}
	series := make(map[string]map[string][][]Point)
	for i, job := range jobs {
		rep := reports[i]
		if res.Edges[job.mod.Name] == nil {
			res.Edges[job.mod.Name] = make(map[string][]float64)
			series[job.mod.Name] = make(map[string][][]Point)
		}
		res.Edges[job.mod.Name][job.tool] = append(res.Edges[job.mod.Name][job.tool], float64(rep.Edges))
		var pts []Point
		for _, s := range rep.Series {
			pts = append(pts, Point{At: s.At, Mean: float64(s.Edges)})
		}
		series[job.mod.Name][job.tool] = append(series[job.mod.Name][job.tool], pts)
	}

	t := &Table{
		Title:   fmt.Sprintf("Table 4: Application-level coverage on hardware, avg branches over %d runs of %gh", opts.Runs, opts.Hours),
		Columns: []string{"Fuzzer", "HTTP Server", "JSON", "Average"},
	}
	var httpEOF, jsonEOF float64
	for _, tool := range []string{"EOF", "GDBFuzz", "SHIFT"} {
		http := mean(res.Edges["HTTP Server"][tool])
		json := mean(res.Edges["JSON"][tool])
		avg := (http + json) / 2
		row := []string{tool, fmt.Sprintf("%.1f", http), fmt.Sprintf("%.1f", json), fmt.Sprintf("%.1f", avg)}
		if tool == "EOF" {
			httpEOF, jsonEOF = http, json
		} else {
			row[1] += fmt.Sprintf(" (%s)", improvement(httpEOF, http))
			row[2] += fmt.Sprintf(" (%s)", improvement(jsonEOF, json))
			row[3] += fmt.Sprintf(" (%s)", improvement((httpEOF+jsonEOF)/2, avg))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"instrumentation strictly confined to the module under test for every tool",
		"parentheses: EOF's improvement over the row's tool")
	res.Table = t

	for _, mod := range appModules() {
		fig := &Figure{Title: fmt.Sprintf("Figure 8: coverage growth on %s", mod.Name)}
		for _, tool := range []string{"EOF", "GDBFuzz", "SHIFT"} {
			if runs := series[mod.Name][tool]; len(runs) > 0 {
				fig.Series = append(fig.Series, mergeSeries(tool, runs))
			}
		}
		res.Figures = append(res.Figures, fig)
	}
	return res, nil
}

func runAppJob(job appJob, opts Options) (*core.Report, error) {
	info, err := targets.ByName("freertos")
	if err != nil {
		return nil, err
	}
	spec := boards.STM32H745()
	seed := opts.SeedBase + int64(job.run)*977 + int64(len(job.tool))
	switch job.tool {
	case "EOF":
		cfg := core.DefaultConfig(info, spec)
		cfg.Seed = seed
		cfg.CallFilter = job.mod.CallFilter
		cfg.CovModules = job.mod.CovModules
		cfg.MaxCalls = 6
		e, err := core.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		return e.Run(opts.budget())
	case "GDBFuzz":
		cfg := gdbfuzz.Config{
			OS: info, Board: spec, Seed: seed,
			Entry: job.mod.EntryAPI, Init: job.mod.InitAPI, InitArgs: job.mod.InitArgs,
			Modules: job.mod.CovModules, Seeds: job.mod.Seeds,
		}
		return gdbfuzz.Run(cfg, opts.budget())
	case "SHIFT":
		cfg := shift.Config{
			OS: info, Board: spec, Seed: seed,
			Entry: job.mod.EntryAPI, Init: job.mod.InitAPI, InitArgs: job.mod.InitArgs,
			Modules: job.mod.CovModules, Seeds: job.mod.Seeds,
		}
		return shift.Run(cfg, opts.budget())
	default:
		return nil, fmt.Errorf("unknown tool %q", job.tool)
	}
}
