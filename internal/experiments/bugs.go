package experiments

import (
	"fmt"
	"sort"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/bugdb"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/targets"
)

// evalBoards maps each evaluated OS to the board the campaign runs on (the
// RT-Thread networking bugs need the radio-equipped board).
func evalBoards() map[string]*board.Spec {
	return map[string]*board.Spec{
		"freertos": boards.STM32H745(),
		"rtthread": boards.ESP32C3(),
		"nuttx":    boards.STM32H745(),
		"zephyr":   boards.STM32H745(),
		"pokos":    boards.STM32H745(),
	}
}

// Table2OSes are the OSes of the bug-detection experiment.
var Table2OSes = []string{"freertos", "rtthread", "nuttx", "zephyr"}

// BugsResult carries the Table-2 reproduction.
type BugsResult struct {
	Table *Table
	// Found maps bug ID → number of runs that found it.
	Found map[int]int
	// Extra lists findings outside the registry (incidental crashes, the
	// extension driver defect).
	Extra []string
	// TotalFound is the number of distinct registered bugs detected.
	TotalFound int
}

// Table2 runs EOF campaigns on the four evaluated OSes and scores the
// findings against the planted-bug registry.
func Table2(opts Options) (*BugsResult, error) {
	res := &BugsResult{Found: make(map[int]int)}
	monitors := make(map[int]map[string]bool)
	extras := map[string]bool{}

	type job struct {
		os  string
		run int
	}
	var jobs []job
	for _, osName := range Table2OSes {
		for r := 0; r < opts.Runs; r++ {
			jobs = append(jobs, job{osName, r})
		}
	}
	reports := make([]*core.Report, len(jobs))
	err := runParallel(len(jobs), opts.parallel(), func(i int) error {
		info, err := targets.ByName(jobs[i].os)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()[jobs[i].os])
		cfg.Seed = opts.SeedBase + int64(i)
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	for _, rep := range reports {
		seen := map[int]bool{}
		for _, b := range rep.Bugs {
			if bug, ok := bugdb.Match(b); ok {
				if !seen[bug.ID] {
					seen[bug.ID] = true
					res.Found[bug.ID]++
				}
				if monitors[bug.ID] == nil {
					monitors[bug.ID] = map[string]bool{}
				}
				monitors[bug.ID][b.Monitor] = true
			} else {
				extras[fmt.Sprintf("%s: %s", rep.OS, b.Title)] = true
			}
		}
	}

	t := &Table{
		Title:   fmt.Sprintf("Table 2: Previously unknown bugs detected by EOF (%gh x %d runs)", opts.Hours, opts.Runs),
		Columns: []string{"#", "Target OS", "Scope", "Bug Type", "Operations", "Confirmed", "Found(runs)", "Monitor"},
	}
	for _, bug := range bugdb.All() {
		conf := ""
		if bug.Confirmed {
			conf = "yes"
		}
		found := "-"
		mon := ""
		if n := res.Found[bug.ID]; n > 0 {
			found = fmt.Sprintf("%d/%d", n, opts.Runs)
			res.TotalFound++
			var ms []string
			for m := range monitors[bug.ID] {
				ms = append(ms, m)
			}
			sort.Strings(ms)
			for i, m := range ms {
				if i > 0 {
					mon += "+"
				}
				mon += m
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", bug.ID), bug.OS, bug.Scope, bug.Kind, bug.Op, conf, found, mon,
		})
	}
	for e := range extras {
		res.Extra = append(res.Extra, e)
	}
	sort.Strings(res.Extra)
	for _, e := range res.Extra {
		t.Notes = append(t.Notes, "additional finding: "+e)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("distinct registered bugs found: %d/19", res.TotalFound))
	res.Table = t
	return res, nil
}

// BugsForVariant runs campaigns with a custom engine configuration and
// returns the distinct registered bug IDs found (used by the EOF-nf and
// Tardis bug-detection comparisons in §5.4.1).
func BugsForVariant(opts Options, tweak func(*core.Config), oses []string) (map[int]bool, error) {
	found := make(map[int]bool)
	type job struct {
		os  string
		run int
	}
	var jobs []job
	for _, osName := range oses {
		for r := 0; r < opts.Runs; r++ {
			jobs = append(jobs, job{osName, r})
		}
	}
	reports := make([]*core.Report, len(jobs))
	err := runParallel(len(jobs), opts.parallel(), func(i int) error {
		info, err := targets.ByName(jobs[i].os)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()[jobs[i].os])
		cfg.Seed = opts.SeedBase + int64(i) + 7777
		if tweak != nil {
			tweak(&cfg)
		}
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rep := range reports {
		for _, b := range rep.Bugs {
			if bug, ok := bugdb.Match(b); ok {
				found[bug.ID] = true
			}
		}
	}
	return found, nil
}
