package experiments

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/link"
	"github.com/eof-fuzz/eof/internal/targets"
)

// AblationLinkFaults (E-link) sweeps the flaky-adapter fault rate on FreeRTOS
// and reports how much campaign throughput the session layer's retry and
// reconnect machinery preserves. Rate 0 is the fault-free baseline every
// other row is normalised against.
func AblationLinkFaults(opts Options) (*Table, error) {
	rates := []float64{0, 0.01, 0.05, 0.10}
	t := &Table{
		Title: fmt.Sprintf("E-link: Debug-link fault-rate sweep on FreeRTOS (%gh x %d runs)", opts.Hours, opts.Runs),
		Columns: []string{
			"Fault rate", "Execs", "Edges", "Edges/h", "Ops/exec",
			"Retries", "Reconnects", "Restores", "Edges vs clean",
		},
	}
	reports := make([]*core.Report, len(rates)*opts.Runs)
	err := runParallel(len(reports), opts.parallel(), func(i int) error {
		rate := rates[i/opts.Runs]
		info, err := targets.ByName("freertos")
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(info, evalBoards()["freertos"])
		cfg.Seed = opts.SeedBase + int64(i%opts.Runs)
		// Zero fault seed: the injector derives its sequence from the
		// campaign seed, so every run is reproducible and distinct.
		cfg.LinkFaults = link.Profile(rate, 0)
		e, err := core.NewEngine(cfg)
		if err != nil {
			return err
		}
		defer e.Close()
		rep, err := e.Run(opts.budget())
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cleanEdges float64
	for ri, rate := range rates {
		var execs, edges, ops, retries, reconnects, restores []float64
		for r := 0; r < opts.Runs; r++ {
			rep := reports[ri*opts.Runs+r]
			execs = append(execs, float64(rep.Stats.Execs))
			edges = append(edges, float64(rep.Edges))
			ops = append(ops, float64(rep.Stats.LinkOps))
			retries = append(retries, float64(rep.Stats.LinkRetries))
			reconnects = append(reconnects, float64(rep.Stats.LinkReconnects))
			restores = append(restores, float64(rep.Stats.Restores))
		}
		opsPerExec := 0.0
		if mean(execs) > 0 {
			opsPerExec = mean(ops) / mean(execs)
		}
		if ri == 0 {
			cleanEdges = mean(edges)
		}
		vsClean := "-"
		if ri > 0 && cleanEdges > 0 {
			vsClean = fmt.Sprintf("%.0f%%", 100*mean(edges)/cleanEdges)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*rate),
			fmt.Sprintf("%.1f", mean(execs)),
			fmt.Sprintf("%.1f", mean(edges)),
			fmt.Sprintf("%.1f", mean(edges)/opts.Hours),
			fmt.Sprintf("%.2f", opsPerExec),
			fmt.Sprintf("%.1f", mean(retries)),
			fmt.Sprintf("%.1f", mean(reconnects)),
			fmt.Sprintf("%.1f", mean(restores)),
			vsClean,
		})
	}
	t.Notes = append(t.Notes,
		"fault mix per rate: 60% dropped frames, 20% corrupt frames, 10% late frames, 10% adapter stalls",
		"retries/reconnects: faults absorbed by the session layer instead of surfacing as campaign failures",
		"ops/exec includes retried attempts: the extra round trips are the visible cost of a flaky adapter")
	return t, nil
}
