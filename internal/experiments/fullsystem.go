package experiments

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/baselines/gustave"
	"github.com/eof-fuzz/eof/internal/baselines/tardis"
	"github.com/eof-fuzz/eof/internal/boards"
	"github.com/eof-fuzz/eof/internal/core"
	"github.com/eof-fuzz/eof/internal/fleet"
	"github.com/eof-fuzz/eof/internal/targets"
)

// Table3OSes are the full-system comparison targets, in the paper's order.
var Table3OSes = []string{"nuttx", "rtthread", "zephyr", "freertos", "pokos"}

// FullSystemResult carries Table 3 and Figure 7.
type FullSystemResult struct {
	Table   *Table
	Figures []*Figure // one per OS, the Figure-7 panels
	// Edges[os][tool] holds the per-run final edge counts.
	Edges map[string]map[string][]float64
}

// fsJob is one campaign of the full-system comparison.
type fsJob struct {
	os   string
	tool string // "EOF", "EOF-nf", "Tardis", "Gustave"
	run  int
}

// Table3 runs the full-system coverage comparison: EOF and EOF-nf on
// hardware boards, Tardis (or Gustave for PoKOS) on the emulated board,
// with the same specification-derived payloads.
func Table3(opts Options) (*FullSystemResult, error) {
	var jobs []fsJob
	for _, osName := range Table3OSes {
		emuTool := "Tardis"
		if osName == "pokos" {
			emuTool = "Gustave"
		}
		for _, tool := range []string{"EOF", "EOF-nf", emuTool} {
			for r := 0; r < opts.Runs; r++ {
				jobs = append(jobs, fsJob{osName, tool, r})
			}
		}
	}
	reports := make([]*core.Report, len(jobs))
	err := runParallel(len(jobs), opts.parallel(), func(i int) error {
		rep, err := runFullSystemJob(jobs[i], opts)
		if err != nil {
			return fmt.Errorf("%s/%s run %d: %w", jobs[i].os, jobs[i].tool, jobs[i].run, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &FullSystemResult{Edges: make(map[string]map[string][]float64)}
	series := make(map[string]map[string][][]Point)
	for i, job := range jobs {
		rep := reports[i]
		if res.Edges[job.os] == nil {
			res.Edges[job.os] = make(map[string][]float64)
			series[job.os] = make(map[string][][]Point)
		}
		res.Edges[job.os][job.tool] = append(res.Edges[job.os][job.tool], float64(rep.Edges))
		var pts []Point
		for _, s := range rep.Series {
			pts = append(pts, Point{At: s.At, Mean: float64(s.Edges)})
		}
		series[job.os][job.tool] = append(series[job.os][job.tool], pts)
	}

	t := &Table{
		Title:   fmt.Sprintf("Table 3: Full-system coverage, avg branches over %d runs of %gh", opts.Runs, opts.Hours),
		Columns: []string{"Target OS", "EOF", "EOF-nf", "Tardis", "Gustave"},
	}
	for _, osName := range Table3OSes {
		eof := mean(res.Edges[osName]["EOF"])
		nf := mean(res.Edges[osName]["EOF-nf"])
		row := []string{displayName(osName), fmt.Sprintf("%.1f", eof),
			fmt.Sprintf("%.1f (%s)", nf, improvement(eof, nf)), "-", "-"}
		if td := res.Edges[osName]["Tardis"]; len(td) > 0 {
			row[3] = fmt.Sprintf("%.1f (%s)", mean(td), improvement(eof, mean(td)))
		}
		if gu := res.Edges[osName]["Gustave"]; len(gu) > 0 {
			row[4] = fmt.Sprintf("%.1f (%s)", mean(gu), improvement(eof, mean(gu)))
		}
		t.Rows = append(t.Rows, row)

		fig := &Figure{Title: fmt.Sprintf("Figure 7: coverage growth on %s", displayName(osName))}
		for _, tool := range []string{"EOF", "EOF-nf", "Tardis", "Gustave"} {
			if runs := series[osName][tool]; len(runs) > 0 {
				fig.Series = append(fig.Series, mergeSeries(tool, runs))
			}
		}
		res.Figures = append(res.Figures, fig)
	}
	t.Notes = append(t.Notes,
		"parentheses: EOF's improvement over the column's tool",
		"EOF/EOF-nf on hardware boards; Tardis/Gustave on the QEMU board (hardware-only peripherals unreachable there)")
	res.Table = t
	return res, nil
}

func runFullSystemJob(job fsJob, opts Options) (*core.Report, error) {
	info, err := targets.ByName(job.os)
	if err != nil {
		return nil, err
	}
	seed := opts.SeedBase + int64(job.run)*131 + int64(len(job.tool))
	switch job.tool {
	case "EOF", "EOF-nf":
		cfg := core.DefaultConfig(info, evalBoards()[job.os])
		cfg.Seed = seed
		cfg.FeedbackGuided = job.tool == "EOF"
		if opts.Shards > 1 {
			pool, err := fleet.New(cfg, fleet.Options{Shards: opts.Shards})
			if err != nil {
				return nil, err
			}
			defer pool.Close()
			return pool.Run(opts.budget())
		}
		e, err := core.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		defer e.Close()
		return e.Run(opts.budget())
	case "Tardis":
		cfg := tardis.DefaultConfig(info, boards.QEMUVirt())
		cfg.Seed = seed
		return tardis.Run(cfg, opts.budget())
	case "Gustave":
		cfg := gustave.DefaultConfig(info, boards.QEMUVirt())
		cfg.Seed = seed
		return gustave.Run(cfg, opts.budget())
	default:
		return nil, fmt.Errorf("unknown tool %q", job.tool)
	}
}

func displayName(osName string) string {
	info, err := targets.ByName(osName)
	if err != nil {
		return osName
	}
	return info.Display
}
