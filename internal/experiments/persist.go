package experiments

import (
	"fmt"
	"os"
	"time"

	eof "github.com/eof-fuzz/eof"
)

// persistOSes is the OS sweep of the persistence ablation — a representative
// pair rather than the full matrix, since the interrupted modes run two
// campaigns per repetition.
var persistOSes = []string{"freertos", "rtthread"}

// persistBoards maps the sweep onto its evaluation boards by name (the public
// API takes board names, unlike the spec-typed core harness).
var persistBoards = map[string]string{
	"freertos": "stm32h745",
	"rtthread": "esp32c3",
}

// AblationPersist (E-persist) quantifies crash-safe campaign persistence
// along both axes the design claims:
//
//   - Overhead: a campaign with the durable store attached must match the
//     plain campaign exec for exec and edge for edge (checkpointing runs
//     between epochs on its own journal stream).
//   - Recovery: a campaign interrupted at half budget and resumed with the
//     remaining half must end near the uninterrupted campaign's coverage,
//     while a cold restart — same interruption, no store — forfeits the first
//     half's corpus and restarts exploration from zero.
//
// Four modes per OS, same seeds: "fresh" (full budget, no store), "persist"
// (full budget, store attached), "resume" (half budget, then resumed from the
// store for the other half) and "cold" (half budget, then a fresh campaign
// for the other half — the final edges are the second campaign's, exactly
// what a stateless restart is left with).
func AblationPersist(opts Options) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E-persist: Crash-safe persistence overhead and resume benefit (%gh x %d runs)",
			opts.Hours, opts.Runs),
		Columns: []string{
			"OS", "Mode", "Execs", "Edges", "Checkpoints", "Edges vs fresh",
		},
	}
	modes := []string{"fresh", "persist", "resume", "cold"}
	type result struct {
		execs, edges, checkpoints float64
	}
	results := make([]result, len(persistOSes)*len(modes)*opts.Runs)
	err := runParallel(len(results), opts.parallel(), func(i int) error {
		osName := persistOSes[i/(len(modes)*opts.Runs)]
		mode := modes[(i/opts.Runs)%len(modes)]
		seed := opts.SeedBase + int64(i%opts.Runs)
		run := func(o eof.Options, budget time.Duration) (*eof.Report, error) {
			c, err := eof.NewCampaign(o)
			if err != nil {
				return nil, err
			}
			defer c.Close()
			return c.Run(budget)
		}
		base := eof.Options{OS: osName, Board: persistBoards[osName], Seed: seed, Shards: opts.Shards}
		var rep *eof.Report
		var err error
		switch mode {
		case "fresh":
			rep, err = run(base, opts.budget())
		case "persist":
			withStore := base
			withStore.CorpusDir, err = os.MkdirTemp("", "eof-persist-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(withStore.CorpusDir)
			rep, err = run(withStore, opts.budget())
		case "resume":
			withStore := base
			withStore.CorpusDir, err = os.MkdirTemp("", "eof-persist-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(withStore.CorpusDir)
			if _, err = run(withStore, opts.budget()/2); err != nil {
				return err
			}
			resumed := withStore
			resumed.Resume = true
			rep, err = run(resumed, opts.budget()/2)
		case "cold":
			if _, err = run(base, opts.budget()/2); err != nil {
				return err
			}
			restart := base
			restart.Seed = seed + 7 // a restart does not replay the same RNG
			rep, err = run(restart, opts.budget()/2)
		}
		if err != nil {
			return err
		}
		r := result{execs: float64(rep.Execs), edges: float64(rep.Edges)}
		if rep.Persist != nil {
			r.checkpoints = float64(rep.Persist.Checkpoints)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for oi, osName := range persistOSes {
		var freshEdges float64
		for mi, mode := range modes {
			var execs, edges, cks []float64
			for r := 0; r < opts.Runs; r++ {
				res := results[(oi*len(modes)+mi)*opts.Runs+r]
				execs = append(execs, res.execs)
				edges = append(edges, res.edges)
				cks = append(cks, res.checkpoints)
			}
			if mode == "fresh" {
				freshEdges = mean(edges)
			}
			vsFresh := "-"
			if mode != "fresh" {
				vsFresh = improvement(mean(edges), freshEdges)
			}
			t.Rows = append(t.Rows, []string{
				osName, mode,
				fmt.Sprintf("%.1f", mean(execs)),
				fmt.Sprintf("%.1f", mean(edges)),
				fmt.Sprintf("%.1f", mean(cks)),
				vsFresh,
			})
		}
	}
	t.Notes = append(t.Notes,
		"persist rows must match fresh exactly (0.00%): the store never perturbs the campaign",
		"resume: half budget, then resumed from the durable store for the other half",
		"cold: same interruption without a store; the final edges are the restarted campaign's alone",
		"checkpoints: epoch checkpoints committed by the (final) campaign of the mode")
	return t, nil
}
