package agent

import (
	"encoding/binary"
	"testing"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/flash"
	"github.com/eof-fuzz/eof/internal/mem"
	"github.com/eof-fuzz/eof/internal/rtos"
	"github.com/eof-fuzz/eof/internal/sym"
	"github.com/eof-fuzz/eof/internal/uart"
	"github.com/eof-fuzz/eof/internal/vtime"
	"github.com/eof-fuzz/eof/internal/wire"
)

// miniOS exposes three handlers: add, fault, and blob-length.
type miniOS struct {
	k     *rtos.Kernel
	env   *board.Env
	calls []string
}

func (m *miniOS) Name() string         { return "mini" }
func (m *miniOS) Kernel() *rtos.Kernel { return m.k }
func (m *miniOS) APIs() []API {
	return []API{
		{Name: "add", Handler: func(a []uint64) (uint64, rtos.Errno) {
			m.calls = append(m.calls, "add")
			var s uint64
			for _, v := range a {
				s += v
			}
			return s, rtos.OK
		}},
		{Name: "boom", Handler: func(a []uint64) (uint64, rtos.Errno) {
			m.calls = append(m.calls, "boom")
			m.k.PanicFault(cpu.FaultUsage, "boom handler")
			return 0, rtos.OK
		}},
		{Name: "bloblen", Handler: func(a []uint64) (uint64, rtos.Errno) {
			m.calls = append(m.calls, "bloblen")
			if a[0] == 0 {
				return 0, rtos.ErrInval
			}
			return uint64(BlobLen(m.env, a[0])), rtos.OK
		}},
	}
}

type rig struct {
	env   *board.Env
	os    *miniOS
	core  *cpu.Core
	lay   board.Layout
	syms  *sym.Table
	agent *Agent
}

func newRig(t *testing.T) *rig {
	t.Helper()
	spec := &board.Spec{
		Name: "t", HZ: 100_000_000, CyclesPerBlock: 4, MaxBreakpoints: 8,
		FlashBase: 0x0800_0000, RAMBase: 0x2000_0000, RAMSize: 256 * 1024, CovEntries: 64,
	}
	lay := board.LayoutFor(spec)
	clock := &vtime.Clock{}
	core := cpu.New(clock, spec.CPUConfig())
	mm := mem.NewMap()
	ram := mem.NewRegion("ram", spec.RAMBase, spec.RAMSize, mem.RW)
	mm.MustAdd(ram)
	env := &board.Env{
		Spec: spec, Clock: clock, Core: core, Mem: mm, RAM: ram,
		UART: uart.New(clock), Flash: flash.NewDevice(1<<20, 4096),
		Syms:    sym.NewTable(spec.FlashBase + 0x1000),
		FSBAddr: lay.FSB, CovAddr: lay.Cov,
		MailboxIn: lay.MailboxIn, MailboxOut: lay.MailboxOut, ScratchBase: lay.Scratch,
	}
	k := rtos.NewKernel(env, "Mini")
	k.NewHeap(lay.Scratch+ArenaSize, 64*1024, "m_alloc", "m_free", "m_lock", "m.c")
	o := &miniOS{k: k, env: env}
	a := New(env, o)
	core.Start(a.Main)
	r := &rig{env: env, os: o, core: core, lay: lay, syms: env.Syms, agent: a}
	// Run to executor_main.
	if err := core.SetBreakpoint(env.Syms.Addr(SymExecutorMain)); err != nil {
		t.Fatal(err)
	}
	st := core.Continue(100000)
	if st.Kind != cpu.StopBreakpoint {
		t.Fatalf("first stop: %+v", st)
	}
	t.Cleanup(core.Kill)
	return r
}

// run delivers one wire program and pumps until back at executor_main or a
// terminal stop; it returns the stop and the result block.
func (r *rig) run(t *testing.T, p *wire.Prog) (cpu.Stop, wire.Result) {
	t.Helper()
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4+len(raw))
	binary.LittleEndian.PutUint32(buf, uint32(len(raw)))
	copy(buf[4:], raw)
	if err := r.env.Mem.Write(r.lay.MailboxIn, buf); err != nil {
		t.Fatal(err)
	}
	var st cpu.Stop
	for i := 0; i < 64; i++ {
		st = r.core.Continue(200000)
		if st.Kind == cpu.StopBreakpoint && st.PC == r.syms.Addr(SymExecutorMain) {
			break
		}
		if st.Kind == cpu.StopFault {
			break
		}
	}
	out, err := r.env.Mem.Read(r.lay.MailboxOut, wire.ResultBytes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wire.UnmarshalResult(out)
	if err != nil {
		t.Fatal(err)
	}
	return st, res
}

func TestAgentExecutesProgram(t *testing.T) {
	r := newRig(t)
	p := &wire.Prog{Calls: []wire.Call{
		{API: 0, Args: []wire.Arg{{Kind: wire.ArgImm, Val: 2}, {Kind: wire.ArgImm, Val: 3}}},
		{API: 0, Args: []wire.Arg{{Kind: wire.ArgResult, Val: 0}, {Kind: wire.ArgImm, Val: 10}}},
	}}
	_, res := r.run(t, p)
	if res.Executed != 2 || res.Faulted || res.Seq != 1 {
		t.Fatalf("result: %+v", res)
	}
	if len(r.os.calls) != 2 {
		t.Fatalf("calls: %v", r.os.calls)
	}
}

func TestAgentResultChaining(t *testing.T) {
	r := newRig(t)
	// bloblen(blob) then add(result, 1).
	p := &wire.Prog{Calls: []wire.Call{
		{API: 2, Args: []wire.Arg{{Kind: wire.ArgBlob, Blob: []byte("sixteen bytes!!!")}}},
		{API: 0, Args: []wire.Arg{{Kind: wire.ArgResult, Val: 0}, {Kind: wire.ArgImm, Val: 1}}},
	}}
	_, res := r.run(t, p)
	if res.Executed != 2 || res.LastErr != 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestAgentBlobStaging(t *testing.T) {
	r := newRig(t)
	p := &wire.Prog{Calls: []wire.Call{
		{API: 2, Args: []wire.Arg{{Kind: wire.ArgBlob, Blob: []byte("hello")}}},
	}}
	_, res := r.run(t, p)
	if res.Executed != 1 {
		t.Fatalf("result: %+v", res)
	}
	// The handler returned BlobLen(addr), which must be 5; results are not
	// directly visible, but LastErr is OK and a second call can consume it.
}

func TestAgentFaultPath(t *testing.T) {
	r := newRig(t)
	p := &wire.Prog{Calls: []wire.Call{
		{API: 0, Args: []wire.Arg{{Kind: wire.ArgImm, Val: 1}}},
		{API: 1}, // boom
		{API: 0}, // never reached
	}}
	st, _ := r.run(t, p)
	if st.Kind != cpu.StopFault {
		t.Fatalf("stop: %+v", st)
	}
	// The fault park happens inside the kernel; the agent's recovery (which
	// writes the result block) runs only when the host resumes once more.
	s1 := r.core.Continue(5000)
	out, _ := r.env.Mem.Read(r.lay.MailboxOut, wire.ResultBytes)
	res, _ := wire.UnmarshalResult(out)
	if !res.Faulted || res.Executed != 1 {
		t.Fatalf("result: %+v", res)
	}
	// After the fault the system wedges: further continues are budget stops
	// at a stable PC (the hang loop).
	s2 := r.core.Continue(5000)
	if s1.Kind != cpu.StopBudget && s1.Kind != cpu.StopBreakpoint {
		t.Fatalf("post-fault: %+v", s1)
	}
	if s2.Kind != cpu.StopBudget || s1.PC != s2.PC {
		t.Fatalf("no stable wedge: %+v vs %+v", s1, s2)
	}
}

func TestAgentRejectsGarbageMailbox(t *testing.T) {
	r := newRig(t)
	// Write garbage with a plausible length prefix.
	garbage := []byte{9, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5}
	if err := r.env.Mem.Write(r.lay.MailboxIn, garbage); err != nil {
		t.Fatal(err)
	}
	var st cpu.Stop
	for i := 0; i < 16; i++ {
		st = r.core.Continue(200000)
		if st.Kind == cpu.StopBreakpoint {
			break
		}
	}
	if st.Kind != cpu.StopBreakpoint {
		t.Fatalf("agent did not survive garbage: %+v", st)
	}
	out, _ := r.env.Mem.Read(r.lay.MailboxOut, wire.ResultBytes)
	res, _ := wire.UnmarshalResult(out)
	if res.Executed != 0 || res.LastErr == 0 {
		t.Fatalf("garbage result: %+v", res)
	}
	// The agent must still execute valid programs afterwards.
	p := &wire.Prog{Calls: []wire.Call{{API: 0, Args: []wire.Arg{{Kind: wire.ArgImm, Val: 7}}}}}
	_, res = r.run(t, p)
	if res.Executed != 1 {
		t.Fatalf("after garbage: %+v", res)
	}
}

func TestAgentBadAPIIndexRejected(t *testing.T) {
	r := newRig(t)
	p := &wire.Prog{Calls: []wire.Call{{API: 99}}}
	_, res := r.run(t, p)
	if res.Executed != 0 || res.LastErr != int32(rtos.ErrInval) {
		t.Fatalf("bad api: %+v", res)
	}
}
