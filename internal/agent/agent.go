// Package agent implements the cross-platform execution agent embedded in
// every target image. It deserializes test cases from the inbound mailbox,
// dispatches them to the OS personality's API table, and reports a result
// summary to the outbound mailbox — using only primitive operations, with no
// dependence on OS services, per the paper's §4.3.2.
//
// The agent exposes the synchronization symbols of Figure 4: executor_main
// (where the host delivers each test case), read_prog, execute_one,
// handle_exception, and _kcmp_buf_full (the coverage-buffer-full trap site).
package agent

import (
	"encoding/binary"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/fsb"
	"github.com/eof-fuzz/eof/internal/rtos"
	"github.com/eof-fuzz/eof/internal/wire"
)

// ArenaSize is the scratch arena where blob arguments are staged; OS
// personalities place their heap after env.ScratchBase+ArenaSize.
const ArenaSize = 32 * 1024

// Synchronization symbol names (Figure 4 of the paper). Hosts resolve these
// through the build's symbol table.
const (
	SymExecutorMain    = "executor_main"
	SymReadProg        = "read_prog"
	SymExecuteOne      = "execute_one"
	SymHandleException = "handle_exception"
	SymKcmpBufFull     = "_kcmp_buf_full"
)

// API is one entry of the target's dispatch table.
type API struct {
	Name    string
	Handler func(args []uint64) (uint64, rtos.Errno)
}

// Target is the OS personality as seen by the agent.
type Target interface {
	Name() string
	Kernel() *rtos.Kernel
	APIs() []API
}

// Agent is the on-target executor.
type Agent struct {
	env    *board.Env
	target Target
	apis   []API

	fnMain    *rtos.Fn
	fnRead    *rtos.Fn
	fnExec    *rtos.Fn
	fnExc     *rtos.Fn
	fnBufFull *rtos.Fn

	arenaCur uint64
	executed uint64 // programs executed since boot
}

// New builds the agent into the firmware, registering its symbols and the
// coverage trap hook.
func New(env *board.Env, target Target) *Agent {
	k := target.Kernel()
	a := &Agent{
		env:       env,
		target:    target,
		apis:      target.APIs(),
		fnMain:    k.Fn(SymExecutorMain, "agent/executor.c", 810, 4),
		fnRead:    k.Fn(SymReadProg, "agent/executor.c", 845, 8),
		fnExec:    k.Fn(SymExecuteOne, "agent/executor.c", 880, 6),
		fnExc:     k.Fn(SymHandleException, "agent/executor.c", 930, 3),
		fnBufFull: k.Fn(SymKcmpBufFull, "agent/cov.c", 44, 1),
	}
	if env.Cov != nil {
		env.Core.SetCovHook(env.Cov.TracePC, a.fnBufFull.Addr())
	}
	return a
}

// Executed returns how many programs this boot has run.
func (a *Agent) Executed() uint64 { return a.executed }

// Main is the firmware entry loop: pause at executor_main for the next test
// case, deserialize, execute, repeat. Delivery is double-synchronised:
// debug-port hosts park the agent on the executor_main breakpoint and write
// the mailbox while it is halted; shared-memory hosts (emulator transports
// with no breakpoints) rely on the mailbox length word, which the agent
// polls and zeroes after consuming each program.
func (a *Agent) Main() {
	a.target.Kernel().SetLive()
	for {
		// Breakpoint synchronisation point.
		a.fnMain.Enter()
		a.fnMain.B(1)
		a.fnMain.Exit()

		// Mailbox handshake: wait for a non-zero length word.
		pollAddr := a.fnMain.SF.Block(2)
		for {
			hdr := a.mustRead(a.env.MailboxIn, 4)
			if binary.LittleEndian.Uint32(hdr) != 0 {
				break
			}
			a.env.Core.Idle(pollAddr, 256)
		}

		prog, ok := a.readProg()
		// Consume the program so the next poll blocks until a fresh one.
		_ = a.env.Mem.Write(a.env.MailboxIn, []byte{0, 0, 0, 0})
		if !ok {
			a.executed++
			a.writeResult(wire.Result{Executed: 0, LastErr: int32(rtos.ErrInval)})
			continue
		}
		res := a.executeOne(prog)
		a.executed++
		a.writeResult(res)
	}
}

// readProg loads and deserializes the inbound mailbox: u32 length at
// MailboxIn, wire bytes after it.
func (a *Agent) readProg() (*wire.Prog, bool) {
	f := a.fnRead
	f.Enter()
	defer f.Exit()
	hdr := a.mustRead(a.env.MailboxIn, 4)
	n := int(binary.LittleEndian.Uint32(hdr))
	if n <= 0 || n > board.MailboxInSize-4 {
		f.B(1)
		return nil, false
	}
	f.B(2)
	raw := a.mustRead(a.env.MailboxIn+4, n)
	p, err := wire.Unmarshal(raw)
	if err != nil {
		f.B(3)
		return nil, false
	}
	for _, c := range p.Calls {
		if int(c.API) >= len(a.apis) {
			f.B(4)
			return nil, false
		}
	}
	f.B(5)
	return p, true
}

// executeOne runs every call of the program, resolving result references and
// staging blobs in the arena. A kernel fault unwinds to here: the agent
// records the outcome, runs handle_exception, and wedges — a crashed
// embedded OS does not keep executing application code.
func (a *Agent) executeOne(p *wire.Prog) (res wire.Result) {
	k := a.target.Kernel()
	a.arenaCur = a.env.ScratchBase
	a.clearFSB()
	if a.env.Cov != nil {
		a.env.Cov.ResetEpoch()
	}

	results := make([]uint64, len(p.Calls))
	defer func() {
		if r := recover(); r != nil {
			u, ok := r.(rtos.Unwind)
			if !ok {
				panic(r)
			}
			res.Faulted = true
			a.executed++
			a.writeResult(res)
			a.handleException(u)
		}
	}()

	f := a.fnExec
	f.Enter()
	f.B(1)
	f.Exit()

	for i, c := range p.Calls {
		args := make([]uint64, len(c.Args))
		for j, arg := range c.Args {
			switch arg.Kind {
			case wire.ArgImm:
				args[j] = arg.Val
			case wire.ArgResult:
				args[j] = results[arg.Val]
			case wire.ArgBlob:
				args[j] = a.stageBlob(arg.Blob)
			}
		}
		ret, errno := a.apis[c.API].Handler(args)
		results[i] = ret
		res.Executed = uint32(i + 1)
		res.LastErr = int32(errno)
		// Let the system breathe between calls: timers fire, tasks run.
		k.Tick()
	}
	return res
}

// handleException is the agent's generic exception hook; after it runs the
// system is wedged until the host restores it. It never returns.
func (a *Agent) handleException(u rtos.Unwind) {
	f := a.fnExc
	f.Enter()
	f.B(1)
	f.Exit()
	a.target.Kernel().HangForever("post-fault")
}

// stageBlob copies blob bytes into the arena and returns their target
// address; when the arena is exhausted it returns 0 — a null pointer the
// handler may legitimately fault on.
func (a *Agent) stageBlob(b []byte) uint64 {
	need := uint64((len(b) + 8 + 7) &^ 7)
	end := a.env.ScratchBase + ArenaSize
	if a.arenaCur+need > end {
		return 0
	}
	addr := a.arenaCur
	a.arenaCur += need
	buf := make([]byte, 8+len(b))
	binary.LittleEndian.PutUint64(buf, uint64(len(b)))
	copy(buf[8:], b)
	if err := a.env.Mem.Write(addr, buf); err != nil {
		return 0
	}
	return addr + 8 // handlers receive the payload address; length precedes it
}

func (a *Agent) writeResult(r wire.Result) {
	r.Seq = uint32(a.executed)
	_ = a.env.Mem.Write(a.env.MailboxOut, wire.MarshalResult(r))
}

func (a *Agent) clearFSB() {
	ram := a.env.RAM.Bytes()
	off := a.env.FSBAddr - a.env.RAM.Base
	fsb.Clear(ram[off:])
}

func (a *Agent) mustRead(addr uint64, n int) []byte {
	data, err := a.env.Mem.Read(addr, n)
	if err != nil {
		// The mailbox is always mapped; failure here is a simulator bug.
		panic(err)
	}
	return data
}

// BlobLen reads back the length prefix of a staged blob address, for
// handlers that need the byte count (write-style APIs pass ptr+len pairs
// explicitly, but some personality code sanity-checks).
func BlobLen(env *board.Env, addr uint64) int {
	if addr < 8 {
		return -1
	}
	raw, err := env.Mem.Read(addr-8, 8)
	if err != nil {
		return -1
	}
	return int(binary.LittleEndian.Uint64(raw))
}
