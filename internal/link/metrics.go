package link

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// LatencyBuckets are the upper bounds of the per-command latency histogram;
// a final implicit overflow bucket catches everything slower. The bounds
// bracket the regime of real adapters (tens of milliseconds per round trip).
var LatencyBuckets = []time.Duration{
	1 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
}

// CmdStat is one command's accumulated metrics.
type CmdStat struct {
	Cmd   string
	Count int64
	// Total is the summed virtual latency; Total/Count is the mean round
	// trip including payload transfer and injected penalties.
	Total time.Duration
	// Buckets histograms latencies against LatencyBuckets (last entry is
	// the overflow bucket).
	Buckets []int64
}

// Mean returns the average round-trip latency.
func (c CmdStat) Mean() time.Duration {
	if c.Count == 0 {
		return 0
	}
	return c.Total / time.Duration(c.Count)
}

// Metrics accumulates debug-link round-trip counts and per-command latency
// histograms. It replaces the transport's old ad-hoc ops counter: the total
// is an atomic so a probe shared across fleet goroutines counts correctly,
// and the per-command map is mutex-guarded. One Metrics instance survives
// session reconnects, so campaign accounting includes every retry.
type Metrics struct {
	ops   atomic.Int64
	clock *vtime.Clock

	mu     sync.Mutex
	perCmd map[string]*cmdAcc
}

type cmdAcc struct {
	count   int64
	total   time.Duration
	buckets []int64 // len(LatencyBuckets)+1, last is overflow
}

// NewMetrics builds a metrics accumulator. clock (optional) supplies the
// virtual timebase for latency measurement; with a nil clock only counts
// accumulate.
func NewMetrics(clock *vtime.Clock) *Metrics {
	return &Metrics{clock: clock, perCmd: make(map[string]*cmdAcc)}
}

// Wrap returns a Link that records every command into m before forwarding
// to inner.
func (m *Metrics) Wrap(inner Link) Link { return &measured{m: m, inner: inner} }

// Ops returns the total number of link round trips recorded so far,
// including retried and faulted attempts (each costs real adapter time).
func (m *Metrics) Ops() int64 { return m.ops.Load() }

// Snapshot returns the per-command stats sorted by command name.
func (m *Metrics) Snapshot() []CmdStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]CmdStat, 0, len(m.perCmd))
	for cmd, acc := range m.perCmd {
		st := CmdStat{Cmd: cmd, Count: acc.count, Total: acc.total, Buckets: make([]int64, len(acc.buckets))}
		copy(st.Buckets, acc.buckets)
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cmd < out[j].Cmd })
	return out
}

func (m *Metrics) begin() time.Duration {
	if m.clock == nil {
		return 0
	}
	return m.clock.Now()
}

func (m *Metrics) observe(cmd string, start time.Duration) {
	m.ops.Add(1)
	var lat time.Duration
	if m.clock != nil {
		lat = m.clock.Now() - start
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	acc := m.perCmd[cmd]
	if acc == nil {
		acc = &cmdAcc{buckets: make([]int64, len(LatencyBuckets)+1)}
		m.perCmd[cmd] = acc
	}
	acc.count++
	acc.total += lat
	i := 0
	for i < len(LatencyBuckets) && lat > LatencyBuckets[i] {
		i++
	}
	acc.buckets[i]++
}

// measured is the middleware view of a Metrics instance.
type measured struct {
	m     *Metrics
	inner Link
}

func (w *measured) ReadMem(addr uint64, n int) ([]byte, error) {
	start := w.m.begin()
	defer w.m.observe("ReadMem", start)
	return w.inner.ReadMem(addr, n)
}

func (w *measured) WriteMem(addr uint64, data []byte) error {
	start := w.m.begin()
	defer w.m.observe("WriteMem", start)
	return w.inner.WriteMem(addr, data)
}

func (w *measured) SetBreakpoint(addr uint64) error {
	start := w.m.begin()
	defer w.m.observe("SetBreakpoint", start)
	return w.inner.SetBreakpoint(addr)
}

func (w *measured) ClearBreakpoint(addr uint64) error {
	start := w.m.begin()
	defer w.m.observe("ClearBreakpoint", start)
	return w.inner.ClearBreakpoint(addr)
}

func (w *measured) Continue(budget int64) (cpu.Stop, error) {
	start := w.m.begin()
	defer w.m.observe("Continue", start)
	return w.inner.Continue(budget)
}

func (w *measured) Reset() error {
	start := w.m.begin()
	defer w.m.observe("Reset", start)
	return w.inner.Reset()
}

func (w *measured) PowerCycle() error {
	start := w.m.begin()
	defer w.m.observe("PowerCycle", start)
	return w.inner.PowerCycle()
}

func (w *measured) FlashErase(off, n int) error {
	start := w.m.begin()
	defer w.m.observe("FlashErase", start)
	return w.inner.FlashErase(off, n)
}

func (w *measured) FlashWrite(off int, data []byte) error {
	start := w.m.begin()
	defer w.m.observe("FlashWrite", start)
	return w.inner.FlashWrite(off, data)
}

func (w *measured) DrainCov(addr uint64, maxEntries int) ([]uint32, uint32, error) {
	start := w.m.begin()
	defer w.m.observe("DrainCov", start)
	return w.inner.DrainCov(addr, maxEntries)
}

func (w *measured) WriteMemContinue(addr uint64, data []byte, budget int64) (cpu.Stop, error) {
	start := w.m.begin()
	defer w.m.observe("WriteMemContinue", start)
	return w.inner.WriteMemContinue(addr, data, budget)
}

func (w *measured) Snapshot() error {
	start := w.m.begin()
	defer w.m.observe("Snapshot", start)
	return w.inner.Snapshot()
}

func (w *measured) RestoreSnapshot() (board.RestoreStats, error) {
	start := w.m.begin()
	defer w.m.observe("RestoreSnapshot", start)
	return w.inner.RestoreSnapshot()
}

func (w *measured) DrainUART() ([]string, error) {
	start := w.m.begin()
	defer w.m.observe("DrainUART", start)
	return w.inner.DrainUART()
}

func (w *measured) BoardState() (board.State, int, string, error) {
	start := w.m.begin()
	defer w.m.observe("BoardState", start)
	return w.inner.BoardState()
}

func (w *measured) Close() error { return w.inner.Close() }

var _ Link = (*measured)(nil)
