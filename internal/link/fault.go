package link

import (
	"math/rand"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// FaultConfig parameterises deterministic link-fault injection. Rates are
// per-command probabilities; one uniform draw per command selects at most
// one fault, so Drop+Corrupt+Stall+Delay must not exceed 1.
type FaultConfig struct {
	// Drop is the probability the frame is lost on the wire.
	Drop float64
	// Corrupt is the probability the frame fails its checksum and the
	// probe discards it unexecuted.
	Corrupt float64
	// Stall is the probability the adapter dies; subsequent commands fail
	// until Revive (the session's reconnect) power-cycles it.
	Stall float64
	// Delay is the probability a command is slowed by DelayBy without
	// failing.
	Delay float64
	// DelayBy is the extra virtual latency of a delayed command.
	DelayBy time.Duration
	// Penalty is the virtual time a failed command burns before the host
	// notices (the adapter's detection timeout). Zero uses DefaultPenalty.
	Penalty time.Duration
	// Seed makes the fault sequence deterministic. Engines default a zero
	// Seed to the campaign seed, so fleet shards draw distinct sequences.
	Seed int64
}

// DefaultPenalty approximates a USB adapter's frame timeout.
const DefaultPenalty = 50 * time.Millisecond

// Enabled reports whether any fault can ever fire.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Corrupt > 0 || c.Stall > 0 || c.Delay > 0
}

// Profile returns a mixed flaky-adapter profile with the given total
// per-command fault rate: 60% frame drops, 20% corrupt frames, 10% late
// frames, 10% adapter stalls. This is the shape behind the -link-faults
// flag and the E-link ablation.
func Profile(rate float64, seed int64) FaultConfig {
	if rate <= 0 {
		return FaultConfig{Seed: seed}
	}
	return FaultConfig{
		Drop:    0.6 * rate,
		Corrupt: 0.2 * rate,
		Delay:   0.1 * rate,
		Stall:   0.1 * rate,
		DelayBy: 20 * time.Millisecond,
		Seed:    seed,
	}
}

// Injector is the flaky-adapter middleware: it deterministically drops,
// corrupts, delays or stalls commands on their way to the inner transport.
// It sits below the session layer, which absorbs everything it injects.
type Injector struct {
	inner   Link
	cfg     FaultConfig
	rnd     *rand.Rand
	clock   *vtime.Clock
	stalled bool
	counts  [4]int64 // indexed by FaultKind
	onFault func(FaultKind, string)
}

// SetOnFault installs a callback fired once per freshly injected fault (not
// for commands rejected because the adapter is already stalled). The engine
// journals these as link-fault trace events.
func (f *Injector) SetOnFault(fn func(k FaultKind, cmd string)) { f.onFault = fn }

func (f *Injector) notify(k FaultKind, cmd string) {
	if f.onFault != nil {
		f.onFault(k, cmd)
	}
}

// NewInjector wraps inner with fault injection. clock (optional) is charged
// the detection penalty of failed commands and the extra latency of delayed
// ones, so injected faults cost campaign time like real ones.
func NewInjector(inner Link, cfg FaultConfig, clock *vtime.Clock) *Injector {
	if cfg.Penalty <= 0 {
		cfg.Penalty = DefaultPenalty
	}
	return &Injector{
		inner: inner,
		cfg:   cfg,
		rnd:   rand.New(rand.NewSource(cfg.Seed ^ 0xFA017)),
		clock: clock,
	}
}

// Revive power-cycles the adapter after a stall; the session's reconnect
// path calls it before re-arming breakpoints.
func (f *Injector) Revive() { f.stalled = false }

// StallNow kills the adapter immediately (a yanked cable), regardless of
// the configured rates. Tests use it to exercise the reconnect path
// deterministically.
func (f *Injector) StallNow() { f.stalled = true }

// Stalled reports whether the adapter is currently dead.
func (f *Injector) Stalled() bool { return f.stalled }

// Injected returns how many faults of kind k have fired so far.
func (f *Injector) Injected(k FaultKind) int64 { return f.counts[k] }

func (f *Injector) charge(d time.Duration) {
	if f.clock != nil {
		f.clock.Advance(d)
	}
}

// before draws this command's fate. A non-nil error means the command must
// not be forwarded; the fault has already been charged to the clock.
func (f *Injector) before(cmd string) error {
	if f.stalled {
		f.charge(f.cfg.Penalty)
		return &FaultError{Kind: FaultStall, Cmd: cmd}
	}
	if !f.cfg.Enabled() {
		return nil
	}
	r := f.rnd.Float64()
	switch {
	case r < f.cfg.Drop:
		f.counts[FaultDrop]++
		f.charge(f.cfg.Penalty)
		f.notify(FaultDrop, cmd)
		return &FaultError{Kind: FaultDrop, Cmd: cmd}
	case r < f.cfg.Drop+f.cfg.Corrupt:
		f.counts[FaultCorrupt]++
		f.charge(f.cfg.Penalty)
		f.notify(FaultCorrupt, cmd)
		return &FaultError{Kind: FaultCorrupt, Cmd: cmd}
	case r < f.cfg.Drop+f.cfg.Corrupt+f.cfg.Stall:
		f.counts[FaultStall]++
		f.stalled = true
		f.charge(f.cfg.Penalty)
		f.notify(FaultStall, cmd)
		return &FaultError{Kind: FaultStall, Cmd: cmd}
	case r < f.cfg.Drop+f.cfg.Corrupt+f.cfg.Stall+f.cfg.Delay:
		f.counts[FaultDelay]++
		f.charge(f.cfg.DelayBy)
		f.notify(FaultDelay, cmd)
		return nil
	}
	return nil
}

func (f *Injector) ReadMem(addr uint64, n int) ([]byte, error) {
	if err := f.before("ReadMem"); err != nil {
		return nil, err
	}
	return f.inner.ReadMem(addr, n)
}

func (f *Injector) WriteMem(addr uint64, data []byte) error {
	if err := f.before("WriteMem"); err != nil {
		return err
	}
	return f.inner.WriteMem(addr, data)
}

func (f *Injector) SetBreakpoint(addr uint64) error {
	if err := f.before("SetBreakpoint"); err != nil {
		return err
	}
	return f.inner.SetBreakpoint(addr)
}

func (f *Injector) ClearBreakpoint(addr uint64) error {
	if err := f.before("ClearBreakpoint"); err != nil {
		return err
	}
	return f.inner.ClearBreakpoint(addr)
}

func (f *Injector) Continue(budget int64) (cpu.Stop, error) {
	if err := f.before("Continue"); err != nil {
		return cpu.Stop{}, err
	}
	return f.inner.Continue(budget)
}

func (f *Injector) Reset() error {
	if err := f.before("Reset"); err != nil {
		return err
	}
	return f.inner.Reset()
}

func (f *Injector) PowerCycle() error {
	if err := f.before("PowerCycle"); err != nil {
		return err
	}
	return f.inner.PowerCycle()
}

func (f *Injector) FlashErase(off, n int) error {
	if err := f.before("FlashErase"); err != nil {
		return err
	}
	return f.inner.FlashErase(off, n)
}

func (f *Injector) FlashWrite(off int, data []byte) error {
	if err := f.before("FlashWrite"); err != nil {
		return err
	}
	return f.inner.FlashWrite(off, data)
}

func (f *Injector) DrainCov(addr uint64, maxEntries int) ([]uint32, uint32, error) {
	if err := f.before("DrainCov"); err != nil {
		return nil, 0, err
	}
	return f.inner.DrainCov(addr, maxEntries)
}

func (f *Injector) WriteMemContinue(addr uint64, data []byte, budget int64) (cpu.Stop, error) {
	if err := f.before("WriteMemContinue"); err != nil {
		return cpu.Stop{}, err
	}
	return f.inner.WriteMemContinue(addr, data, budget)
}

func (f *Injector) Snapshot() error {
	if err := f.before("Snapshot"); err != nil {
		return err
	}
	return f.inner.Snapshot()
}

func (f *Injector) RestoreSnapshot() (board.RestoreStats, error) {
	if err := f.before("RestoreSnapshot"); err != nil {
		return board.RestoreStats{}, err
	}
	return f.inner.RestoreSnapshot()
}

func (f *Injector) DrainUART() ([]string, error) {
	if err := f.before("DrainUART"); err != nil {
		return nil, err
	}
	return f.inner.DrainUART()
}

func (f *Injector) BoardState() (board.State, int, string, error) {
	if err := f.before("BoardState"); err != nil {
		return 0, 0, "", err
	}
	return f.inner.BoardState()
}

func (f *Injector) Close() error { return f.inner.Close() }

var _ Link = (*Injector)(nil)
