// Package link layers the host side of the debug channel. The JTAG/SWD port
// is the paper's single control-and-observation channel, and it is narrow
// and failure-prone: adapters drop frames, probes wedge, cables die
// mid-campaign. This package makes that boundary an explicit, instrumentable
// interface and stacks composable middleware on top of the raw transport:
//
//	engine (internal/core)
//	   │ Link interface
//	   ▼
//	Session     — bounded retry with backoff; on link death reconnects,
//	   │          re-arms the shadowed breakpoint set and re-detects
//	   │          vectored-command support (Stats.LinkRetries/LinkReconnects)
//	   ▼
//	Metrics     — atomic round-trip counters and per-command latency
//	   │          histograms (replaces the old ad-hoc Client.ops field)
//	   ▼
//	Injector    — deterministic, seeded fault injection: drop, corrupt,
//	   │          delay, stall (absent when -link-faults is off)
//	   ▼
//	transport   — *ocd.Client over the RSP wire or the in-process dispatch
//
// Error taxonomy, bottom-up: remote errors (ocd.RemoteError, typed ocd.Code)
// and ocd.ErrTimeout describe *target* state — the command was delivered and
// answered, retrying it verbatim cannot change the answer — so they pass
// through every layer untouched and feed the engine's watchdog/restore
// machinery. Link faults (*FaultError) describe *channel* state — the
// command never executed — so the session absorbs them: drop/corrupt/delay
// are transient (retry), stall is link death (reconnect, then retry). Only
// when retries or reconnects are exhausted does the session surface the
// failure, wrapped as ocd.ErrTimeout so Algorithm 1's connection-timeout
// watchdog takes over exactly as for a dead target.
package link

import (
	"fmt"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/ocd"
)

// Link is the full debug-command surface of the probe. *ocd.Client is the
// transport implementation; Session, Metrics and Injector wrap any Link, so
// layers compose in any order and tests can substitute scripted fakes.
type Link interface {
	// ReadMem reads n bytes of target memory at addr.
	ReadMem(addr uint64, n int) ([]byte, error)
	// WriteMem writes data into target memory at addr.
	WriteMem(addr uint64, data []byte) error
	// SetBreakpoint arms a hardware breakpoint at addr.
	SetBreakpoint(addr uint64) error
	// ClearBreakpoint disarms the breakpoint at addr.
	ClearBreakpoint(addr uint64) error
	// Continue resumes the target with a step budget and returns the stop.
	Continue(budget int64) (cpu.Stop, error)
	// Reset warm-resets the board.
	Reset() error
	// PowerCycle drops board power and cold-boots — slower than Reset, but
	// it clears marginal conditions a warm reset cannot. Older probe
	// firmware answers Ebadcmd; callers fall back to Reset.
	PowerCycle() error
	// FlashErase erases the flash range [off, off+n).
	FlashErase(off, n int) error
	// FlashWrite programs data at flash offset off.
	FlashWrite(off int, data []byte) error
	// DrainCov atomically reads and clears the coverage buffer (vectored).
	DrainCov(addr uint64, maxEntries int) (entries []uint32, lost uint32, err error)
	// WriteMemContinue coalesces a mailbox write with a resume (vectored).
	WriteMemContinue(addr uint64, data []byte, budget int64) (cpu.Stop, error)
	// Snapshot captures the board's golden state probe-side (vectored).
	Snapshot() error
	// RestoreSnapshot rolls the board back to the cached snapshot, shipping
	// only the dirty delta in one round trip (vectored).
	RestoreSnapshot() (board.RestoreStats, error)
	// DrainUART returns console lines emitted since the previous drain.
	DrainUART() ([]string, error)
	// BoardState queries power/liveness state, boot count and boot error.
	BoardState() (st board.State, boots int, lastBoot string, err error)
	// Close detaches from the probe.
	Close() error
}

// The transport must cover the full command surface.
var _ Link = (*ocd.Client)(nil)

// FaultKind classifies an injected link fault.
type FaultKind int

// Fault kinds, in injection-draw order.
const (
	// FaultDrop: the frame was lost on the wire; the command never reached
	// the probe. Transient — a retry delivers it.
	FaultDrop FaultKind = iota
	// FaultCorrupt: the frame failed its checksum and the probe discarded
	// it before execution (RSP NAKs bad frames). Transient — retry-safe
	// because the command was never executed.
	FaultCorrupt
	// FaultStall: the adapter died (wedged firmware, yanked cable). Every
	// subsequent command fails until the session power-cycles the adapter
	// via its Reconnect hook.
	FaultStall
	// FaultDelay: the frame arrived late. No error is returned — the
	// injector charges extra virtual latency and forwards the command.
	FaultDelay
)

func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	case FaultStall:
		return "stall"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultError is an injected link-level failure. The faulted command was
// never executed by the probe, so retrying it is always safe.
type FaultError struct {
	Kind FaultKind
	Cmd  string // command name, e.g. "Continue"
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("link: injected %s fault on %s", e.Kind, e.Cmd)
}

// Transient reports whether the fault clears on its own (retry suffices);
// a stall needs a reconnect first.
func (e *FaultError) Transient() bool { return e.Kind != FaultStall }
