package link

import (
	"errors"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// fakeLink is a scripted transport: each command pops the next error from its
// script (nil = success) and records the call. A clock charge per call makes
// latency observable to the metrics layer.
type fakeLink struct {
	script  []error // consumed front-to-back; empty = always succeed
	calls   []string
	bps     []uint64 // SetBreakpoint addresses, in call order
	clock   *vtime.Clock
	perCall time.Duration
}

func (f *fakeLink) next(cmd string) error {
	f.calls = append(f.calls, cmd)
	if f.clock != nil {
		f.clock.Advance(f.perCall)
	}
	if len(f.script) == 0 {
		return nil
	}
	err := f.script[0]
	f.script = f.script[1:]
	return err
}

func (f *fakeLink) ReadMem(addr uint64, n int) ([]byte, error) {
	if err := f.next("ReadMem"); err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}
func (f *fakeLink) WriteMem(addr uint64, data []byte) error { return f.next("WriteMem") }
func (f *fakeLink) SetBreakpoint(addr uint64) error {
	if err := f.next("SetBreakpoint"); err != nil {
		return err
	}
	f.bps = append(f.bps, addr)
	return nil
}
func (f *fakeLink) ClearBreakpoint(addr uint64) error { return f.next("ClearBreakpoint") }
func (f *fakeLink) Continue(budget int64) (cpu.Stop, error) {
	return cpu.Stop{Kind: cpu.StopBudget}, f.next("Continue")
}
func (f *fakeLink) Reset() error                { return f.next("Reset") }
func (f *fakeLink) PowerCycle() error           { return f.next("PowerCycle") }
func (f *fakeLink) FlashErase(off, n int) error { return f.next("FlashErase") }
func (f *fakeLink) FlashWrite(off int, data []byte) error {
	return f.next("FlashWrite")
}
func (f *fakeLink) DrainCov(addr uint64, maxEntries int) ([]uint32, uint32, error) {
	return nil, 0, f.next("DrainCov")
}
func (f *fakeLink) WriteMemContinue(addr uint64, data []byte, budget int64) (cpu.Stop, error) {
	return cpu.Stop{Kind: cpu.StopBudget}, f.next("WriteMemContinue")
}
func (f *fakeLink) Snapshot() error { return f.next("Snapshot") }
func (f *fakeLink) RestoreSnapshot() (board.RestoreStats, error) {
	return board.RestoreStats{}, f.next("RestoreSnapshot")
}
func (f *fakeLink) DrainUART() ([]string, error) { return nil, f.next("DrainUART") }
func (f *fakeLink) BoardState() (board.State, int, string, error) {
	return 0, 0, "", f.next("BoardState")
}
func (f *fakeLink) Close() error { return nil }

var _ Link = (*fakeLink)(nil)

func drop(cmd string) error    { return &FaultError{Kind: FaultDrop, Cmd: cmd} }
func corrupt(cmd string) error { return &FaultError{Kind: FaultCorrupt, Cmd: cmd} }
func stall(cmd string) error   { return &FaultError{Kind: FaultStall, Cmd: cmd} }

func TestSessionRetriesTransient(t *testing.T) {
	clock := &vtime.Clock{}
	fk := &fakeLink{script: []error{drop("WriteMem"), corrupt("WriteMem"), nil}}
	s := NewSession(fk, SessionConfig{Clock: clock})
	if err := s.WriteMem(0x100, []byte{1}); err != nil {
		t.Fatalf("WriteMem after transient faults: %v", err)
	}
	if got := s.Retries(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	// Exponential backoff charged to the clock: 2ms + 4ms.
	if want := 6 * time.Millisecond; clock.Now() != want {
		t.Fatalf("backoff charged %v, want %v", clock.Now(), want)
	}
	if len(fk.calls) != 3 {
		t.Fatalf("transport saw %d attempts, want 3", len(fk.calls))
	}
}

func TestSessionRetryExhaustionSurfacesAsTimeout(t *testing.T) {
	fk := &fakeLink{script: []error{
		drop("Continue"), drop("Continue"), drop("Continue"), drop("Continue"), drop("Continue"),
	}}
	s := NewSession(fk, SessionConfig{MaxRetries: 4})
	_, err := s.Continue(1000)
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	if !errors.Is(err, ocd.ErrTimeout) {
		t.Fatalf("exhaustion error %v does not wrap ocd.ErrTimeout", err)
	}
	if got := s.Retries(); got != 4 {
		t.Fatalf("Retries = %d, want 4", got)
	}
}

func TestSessionRetriesDisabled(t *testing.T) {
	fk := &fakeLink{script: []error{drop("ReadMem")}}
	s := NewSession(fk, SessionConfig{MaxRetries: -1})
	_, err := s.ReadMem(0, 4)
	if !errors.Is(err, ocd.ErrTimeout) {
		t.Fatalf("with retries disabled the first fault must surface as timeout, got %v", err)
	}
	if len(fk.calls) != 1 {
		t.Fatalf("transport saw %d attempts, want 1", len(fk.calls))
	}
}

func TestSessionTargetErrorsPassThrough(t *testing.T) {
	remote := &ocd.RemoteError{Code: ocd.CodeBP, Msg: "no comparators"}
	fk := &fakeLink{script: []error{remote}}
	s := NewSession(fk, SessionConfig{})
	err := s.SetBreakpoint(0x2000)
	var re *ocd.RemoteError
	if !errors.As(err, &re) || re != remote {
		t.Fatalf("remote error did not pass through: %v", err)
	}
	if s.Retries() != 0 {
		t.Fatal("remote error must not be retried")
	}
	if got := s.Breakpoints(); len(got) != 0 {
		t.Fatalf("failed arm must not enter the shadow set: %v", got)
	}

	fk2 := &fakeLink{script: []error{ocd.ErrTimeout}}
	s2 := NewSession(fk2, SessionConfig{})
	if _, err := s2.Continue(1); !errors.Is(err, ocd.ErrTimeout) {
		t.Fatalf("timeout did not pass through: %v", err)
	}
	if len(fk2.calls) != 1 {
		t.Fatal("timeout must not be retried")
	}
}

func TestSessionReconnectRearmsBreakpoints(t *testing.T) {
	fk := &fakeLink{}
	var onReconnect int
	s := NewSession(fk, SessionConfig{
		Reconnect:   func() error { return nil },
		OnReconnect: func() { onReconnect++ },
	})
	// Arm out of order; the shadow set must re-arm sorted.
	for _, addr := range []uint64{0x300, 0x100, 0x200} {
		if err := s.SetBreakpoint(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ClearBreakpoint(0x200); err != nil {
		t.Fatal(err)
	}
	fk.bps = nil // forget the initial arms; watch only the re-arm
	fk.script = []error{stall("Continue")}
	if _, err := s.Continue(1000); err != nil {
		t.Fatalf("Continue across reconnect: %v", err)
	}
	if got := s.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
	if onReconnect != 1 {
		t.Fatalf("OnReconnect fired %d times, want 1", onReconnect)
	}
	want := []uint64{0x100, 0x300}
	if len(fk.bps) != len(want) {
		t.Fatalf("re-armed %v, want %v", fk.bps, want)
	}
	for i, addr := range want {
		if fk.bps[i] != addr {
			t.Fatalf("re-armed %v, want %v (sorted order)", fk.bps, want)
		}
	}
}

func TestSessionStallWithoutReconnectPath(t *testing.T) {
	fk := &fakeLink{script: []error{stall("Reset")}}
	s := NewSession(fk, SessionConfig{})
	if err := s.Reset(); !errors.Is(err, ocd.ErrTimeout) {
		t.Fatalf("unrecoverable stall must surface as timeout, got %v", err)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func(seed int64) ([4]int64, []string) {
		fk := &fakeLink{}
		inj := NewInjector(fk, FaultConfig{Drop: 0.3, Corrupt: 0.2, Delay: 0.1, Seed: seed}, nil)
		var outcomes []string
		for i := 0; i < 500; i++ {
			err := inj.WriteMem(0, nil)
			var fe *FaultError
			if errors.As(err, &fe) {
				outcomes = append(outcomes, fe.Kind.String())
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		var counts [4]int64
		for k := FaultDrop; k <= FaultDelay; k++ {
			counts[k] = inj.Injected(k)
		}
		return counts, outcomes
	}
	c1, o1 := run(7)
	c2, o2 := run(7)
	if c1 != c2 {
		t.Fatalf("same seed, different fault counts: %v vs %v", c1, c2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, sequences diverge at %d: %s vs %s", i, o1[i], o2[i])
		}
	}
	if c1[FaultDrop] == 0 || c1[FaultCorrupt] == 0 {
		t.Fatalf("500 draws at 30%%/20%% injected nothing: %v", c1)
	}
	c3, _ := run(8)
	if c1 == c3 {
		t.Fatalf("different seeds produced identical fault counts: %v", c1)
	}
}

func TestInjectorStallPersistsUntilRevive(t *testing.T) {
	clock := &vtime.Clock{}
	fk := &fakeLink{}
	inj := NewInjector(fk, FaultConfig{Delay: 1, DelayBy: 0}, clock)
	inj.StallNow()
	for i := 0; i < 3; i++ {
		err := inj.Reset()
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Kind != FaultStall {
			t.Fatalf("stalled adapter returned %v, want stall fault", err)
		}
	}
	if len(fk.calls) != 0 {
		t.Fatalf("stalled adapter forwarded %d commands", len(fk.calls))
	}
	// Each failed command burns the detection penalty.
	if want := 3 * DefaultPenalty; clock.Now() != want {
		t.Fatalf("stall penalties charged %v, want %v", clock.Now(), want)
	}
	inj.Revive()
	if err := inj.Reset(); err != nil {
		t.Fatalf("revived adapter still failing: %v", err)
	}
}

func TestMetricsCountsAndHistograms(t *testing.T) {
	clock := &vtime.Clock{}
	fk := &fakeLink{clock: clock, perCall: 3 * time.Millisecond}
	m := NewMetrics(clock)
	l := m.Wrap(fk)
	for i := 0; i < 5; i++ {
		if _, err := l.ReadMem(0, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteMem(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Ops(); got != 6 {
		t.Fatalf("Ops = %d, want 6", got)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Cmd != "ReadMem" || snap[1].Cmd != "WriteMem" {
		t.Fatalf("snapshot = %+v, want sorted ReadMem/WriteMem", snap)
	}
	rd := snap[0]
	if rd.Count != 5 || rd.Mean() != 3*time.Millisecond {
		t.Fatalf("ReadMem count=%d mean=%v, want 5 and 3ms", rd.Count, rd.Mean())
	}
	// 3ms lands in the (1ms, 5ms] bucket (index 1).
	if rd.Buckets[1] != 5 {
		t.Fatalf("ReadMem buckets = %v, want 5 in bucket 1", rd.Buckets)
	}
}

// TestStackAbsorbsFaults wires session→metrics→injector over the fake and
// checks the composed behaviour: faults absorbed, attempts all counted.
func TestStackAbsorbsFaults(t *testing.T) {
	clock := &vtime.Clock{}
	fk := &fakeLink{}
	inj := NewInjector(fk, FaultConfig{Drop: 0.2, Seed: 42}, clock)
	m := NewMetrics(clock)
	s := NewSession(m.Wrap(inj), SessionConfig{Clock: clock, Reconnect: func() error { inj.Revive(); return nil }})
	const n = 300
	for i := 0; i < n; i++ {
		if err := s.WriteMem(0, nil); err != nil {
			t.Fatalf("command %d surfaced %v despite session layer", i, err)
		}
	}
	if s.Retries() == 0 {
		t.Fatal("20% drop rate over 300 commands caused no retries")
	}
	// Metrics sits below the session: every retried attempt is a round trip.
	if got := m.Ops(); got != int64(n)+s.Retries() {
		t.Fatalf("Ops = %d, want %d successes + %d retries", got, n, s.Retries())
	}
}
