package link

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/ocd"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// DefaultRetries is the per-command transparent retry bound when
// SessionConfig leaves MaxRetries at zero.
const DefaultRetries = 4

// DefaultBackoff is the base retry backoff; it doubles per attempt. Real
// hosts back off before re-sending so a congested adapter can drain.
const DefaultBackoff = 2 * time.Millisecond

// SessionConfig parameterises the retry/reconnect layer.
type SessionConfig struct {
	// MaxRetries bounds transparent retries per command (0 = DefaultRetries,
	// negative disables retries entirely).
	MaxRetries int
	// Backoff is the base virtual-time backoff between retries, doubling
	// per attempt (0 = DefaultBackoff).
	Backoff time.Duration
	// Clock is charged the backoff time (optional).
	Clock *vtime.Clock
	// Reconnect revives the transport after link death — on real hardware
	// a probe power-cycle and re-attach, here the injector's Revive. Nil
	// means link death is unrecoverable and surfaces as a timeout.
	Reconnect func() error
	// OnReconnect is notified after a successful reconnect and breakpoint
	// re-arm; the engine uses it to re-latch vectored-command support
	// (the fresh adapter may speak vCovDrain/vRun even if the old one
	// degraded mid-campaign).
	OnReconnect func()
	// OnRetry is notified each time a command is transparently re-sent
	// after a transient fault, with the command name. The engine journals
	// these as link-retry trace events.
	OnRetry func(cmd string)
}

// Session is the retry/reconnect middleware. It absorbs the transient link
// faults the layer below injects (or a real adapter produces): transient
// faults are retried with bounded exponential backoff; a dead link is
// reconnected — the transport revived, the shadowed breakpoint set re-armed
// in sorted address order, the capability latch refreshed — and the command
// retried. Target-level errors (ocd.RemoteError, ocd.ErrTimeout) pass
// through untouched. When retries or reconnects are exhausted the failure
// surfaces wrapped as ocd.ErrTimeout, handing the campaign to the
// connection-timeout watchdog exactly as a dead target would.
type Session struct {
	inner Link
	cfg   SessionConfig

	// bps shadows the armed breakpoint set so a reconnect can restore the
	// target's debug-unit state without engine involvement.
	bps map[uint64]bool

	retries    atomic.Int64
	reconnects atomic.Int64
}

// NewSession wraps inner with retry/reconnect handling.
func NewSession(inner Link, cfg SessionConfig) *Session {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	return &Session{inner: inner, cfg: cfg, bps: make(map[uint64]bool)}
}

// Retries returns how many commands were transparently re-sent.
func (s *Session) Retries() int64 { return s.retries.Load() }

// Reconnects returns how many link deaths were recovered.
func (s *Session) Reconnects() int64 { return s.reconnects.Load() }

// Breakpoints returns the shadowed armed set in ascending address order.
func (s *Session) Breakpoints() []uint64 {
	addrs := make([]uint64, 0, len(s.bps))
	for a := range s.bps {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

func (s *Session) backoff(attempt int) {
	if s.cfg.Clock == nil {
		return
	}
	s.cfg.Clock.Advance(s.cfg.Backoff << (attempt - 1))
}

// do runs op, absorbing link faults. op must be idempotent at the probe —
// guaranteed here because injected faults fire before delivery, so a
// faulted command never executed.
func (s *Session) do(cmd string, op func() error) error {
	attempt, recons := 0, 0
	for {
		err := op()
		var fe *FaultError
		if err == nil || !errors.As(err, &fe) {
			return err // success, or target truth the layers above must see
		}
		if !fe.Transient() {
			recons++
			if recons > maxReconnects {
				return fmt.Errorf("link: %s: link died %d times: %w", cmd, recons, ocd.ErrTimeout)
			}
			if rerr := s.reconnect(); rerr != nil {
				return fmt.Errorf("link: %s: reconnect failed (%v) after %w", cmd, rerr, ocd.ErrTimeout)
			}
			// A reconnect buys a fresh adapter; retry the command without
			// consuming the transient-retry budget.
			continue
		}
		attempt++
		if attempt > s.cfg.MaxRetries {
			return fmt.Errorf("link: %s: %d retries exhausted (last: %v): %w", cmd, s.cfg.MaxRetries, fe, ocd.ErrTimeout)
		}
		s.retries.Add(1)
		if s.cfg.OnRetry != nil {
			s.cfg.OnRetry(cmd)
		}
		s.backoff(attempt)
	}
}

// maxReconnects bounds back-to-back reconnect attempts while re-arming, so
// an adapter that stalls during every recovery cannot loop forever.
const maxReconnects = 3

// reconnect revives the transport and restores link-session state: the
// shadowed breakpoints are re-armed in sorted address order (the same
// deterministic order the engine armed them in, so comparator allocation is
// reproducible), then the capability latch is refreshed via OnReconnect.
func (s *Session) reconnect() error {
	if s.cfg.Reconnect == nil {
		return errors.New("no reconnect path")
	}
	for attempt := 0; attempt < maxReconnects; attempt++ {
		if err := s.cfg.Reconnect(); err != nil {
			return err
		}
		if s.rearm() {
			s.reconnects.Add(1)
			if s.cfg.OnReconnect != nil {
				s.cfg.OnReconnect()
			}
			return nil
		}
	}
	return fmt.Errorf("link stalled %d times during re-arm", maxReconnects)
}

// rearm restores the breakpoint set on the revived link. Transient faults
// during re-arm are retried; a fresh stall aborts so reconnect can revive
// again. Target-level errors (a timeout because the board is down mid-
// restore, a remote error) end the re-arm but still count the reconnect as
// successful: the *link* is back, and target state is the engine's
// watchdog/restore machinery's business — it re-arms every breakpoint
// itself after a restore.
func (s *Session) rearm() bool {
	for _, addr := range s.Breakpoints() {
		armed := false
		for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
			err := s.inner.SetBreakpoint(addr)
			if err == nil {
				armed = true
				break
			}
			var fe *FaultError
			if !errors.As(err, &fe) {
				return true // target truth, not a link failure
			}
			if !fe.Transient() {
				return false
			}
			s.retries.Add(1)
			if s.cfg.OnRetry != nil {
				s.cfg.OnRetry("SetBreakpoint")
			}
			s.backoff(attempt + 1)
		}
		if !armed {
			return false
		}
	}
	return true
}

func (s *Session) ReadMem(addr uint64, n int) (data []byte, err error) {
	err = s.do("ReadMem", func() error {
		data, err = s.inner.ReadMem(addr, n)
		return err
	})
	return data, err
}

func (s *Session) WriteMem(addr uint64, data []byte) error {
	return s.do("WriteMem", func() error { return s.inner.WriteMem(addr, data) })
}

func (s *Session) SetBreakpoint(addr uint64) error {
	err := s.do("SetBreakpoint", func() error { return s.inner.SetBreakpoint(addr) })
	if err == nil {
		s.bps[addr] = true
	}
	return err
}

func (s *Session) ClearBreakpoint(addr uint64) error {
	err := s.do("ClearBreakpoint", func() error { return s.inner.ClearBreakpoint(addr) })
	if err == nil {
		delete(s.bps, addr)
	}
	return err
}

func (s *Session) Continue(budget int64) (st cpu.Stop, err error) {
	err = s.do("Continue", func() error {
		st, err = s.inner.Continue(budget)
		return err
	})
	return st, err
}

func (s *Session) Reset() error {
	return s.do("Reset", func() error { return s.inner.Reset() })
}

func (s *Session) PowerCycle() error {
	return s.do("PowerCycle", func() error { return s.inner.PowerCycle() })
}

func (s *Session) FlashErase(off, n int) error {
	return s.do("FlashErase", func() error { return s.inner.FlashErase(off, n) })
}

func (s *Session) FlashWrite(off int, data []byte) error {
	return s.do("FlashWrite", func() error { return s.inner.FlashWrite(off, data) })
}

func (s *Session) DrainCov(addr uint64, maxEntries int) (entries []uint32, lost uint32, err error) {
	err = s.do("DrainCov", func() error {
		entries, lost, err = s.inner.DrainCov(addr, maxEntries)
		return err
	})
	return entries, lost, err
}

func (s *Session) WriteMemContinue(addr uint64, data []byte, budget int64) (st cpu.Stop, err error) {
	err = s.do("WriteMemContinue", func() error {
		st, err = s.inner.WriteMemContinue(addr, data, budget)
		return err
	})
	return st, err
}

func (s *Session) Snapshot() error {
	return s.do("Snapshot", func() error { return s.inner.Snapshot() })
}

func (s *Session) RestoreSnapshot() (st board.RestoreStats, err error) {
	err = s.do("RestoreSnapshot", func() error {
		st, err = s.inner.RestoreSnapshot()
		return err
	})
	return st, err
}

func (s *Session) DrainUART() (lines []string, err error) {
	err = s.do("DrainUART", func() error {
		lines, err = s.inner.DrainUART()
		return err
	})
	return lines, err
}

func (s *Session) BoardState() (st board.State, boots int, lastBoot string, err error) {
	err = s.do("BoardState", func() error {
		st, boots, lastBoot, err = s.inner.BoardState()
		return err
	})
	return st, boots, lastBoot, err
}

func (s *Session) Close() error { return s.inner.Close() }

var _ Link = (*Session)(nil)
