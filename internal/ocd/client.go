package ocd

import (
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/rsp"
)

// ErrTimeout is returned when the target does not respond — the board failed
// to boot, the image is corrupt, or the core is dead. This is watchdog
// signal (1) of the paper's Algorithm 1.
var ErrTimeout = errors.New("ocd: connection timeout")

// RemoteError is a non-timeout error reported by the debug server.
type RemoteError struct {
	Code Code
	Msg  string
}

func (e *RemoteError) Error() string {
	if e.Msg == "" {
		return "ocd: remote error " + string(e.Code)
	}
	return fmt.Sprintf("ocd: remote %s error: %s", e.Code, e.Msg)
}

// Client is the host side of the debug link. It is the transport layer of
// the internal/link stack: round-trip accounting and latency histograms live
// in the link.Metrics middleware, retries and reconnection in link.Session.
type Client struct {
	conn   *rsp.Conn
	direct *Server
	closer func() error
}

// ConnectDirect attaches a client that dispatches commands into the server
// in-process, bypassing the packet pipe (and its goroutine handoffs) while
// still exercising the full command grammar and latency model. Campaign
// engines use it; the framed transport stays covered by Connect and the
// protocol tests.
func ConnectDirect(srv *Server) *Client {
	return &Client{direct: srv}
}

// NewClient wraps an established transport.
func NewClient(rw interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
}) *Client {
	return &Client{conn: rsp.NewConn(rw)}
}

// Connect wires a client to a server over an in-process pipe, starting the
// server's service goroutine. Close detaches and tears the pipe down.
func Connect(srv *Server) *Client {
	host, probe := net.Pipe()
	go func() {
		_ = srv.Serve(probe)
		probe.Close()
	}()
	c := NewClient(host)
	c.closer = func() error {
		// Best-effort detach so the server goroutine exits cleanly.
		_ = c.conn.Send([]byte("D"))
		_, _ = c.conn.Recv()
		return host.Close()
	}
	return c
}

// Close detaches from the probe.
func (c *Client) Close() error {
	if c.closer != nil {
		err := c.closer()
		c.closer = nil
		return err
	}
	return nil
}

func (c *Client) call(req string) (string, error) {
	var s string
	if c.direct != nil {
		s, _ = c.direct.handle(req)
	} else {
		resp, err := c.conn.Exchange([]byte(req))
		if err != nil {
			return "", err
		}
		s = string(resp)
	}
	if strings.HasPrefix(s, "E") {
		return "", decodeError(s[1:])
	}
	return s, nil
}

func decodeError(s string) error {
	if s == string(CodeTimeout) {
		return ErrTimeout
	}
	code, rest := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		code, rest = s[:i], s[i+1:]
	}
	msg := ""
	if b, err := hex.DecodeString(rest); err == nil {
		msg = string(b)
	} else {
		msg = rest
	}
	return &RemoteError{Code: Code(code), Msg: msg}
}

// ReadMem reads n bytes of target memory at addr.
func (c *Client) ReadMem(addr uint64, n int) ([]byte, error) {
	resp, err := c.call(fmt.Sprintf("m%x,%x", addr, n))
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(resp, "D") {
		return nil, fmt.Errorf("ocd: bad read reply %q", resp)
	}
	data, err := hex.DecodeString(resp[1:])
	if err != nil {
		return nil, fmt.Errorf("ocd: bad read payload: %v", err)
	}
	if len(data) != n {
		return nil, fmt.Errorf("ocd: short read: got %d want %d", len(data), n)
	}
	return data, nil
}

// WriteMem writes data into target memory at addr.
func (c *Client) WriteMem(addr uint64, data []byte) error {
	_, err := c.call(fmt.Sprintf("M%x,%x:%s", addr, len(data), hex.EncodeToString(data)))
	return err
}

// SetBreakpoint arms a hardware breakpoint at addr.
func (c *Client) SetBreakpoint(addr uint64) error {
	_, err := c.call(fmt.Sprintf("Z0,%x", addr))
	return err
}

// ClearBreakpoint disarms the breakpoint at addr.
func (c *Client) ClearBreakpoint(addr uint64) error {
	_, err := c.call(fmt.Sprintf("z0,%x", addr))
	return err
}

// Continue resumes the target with the given step budget and returns the
// next stop event (the GDB -exec-continue of Algorithm 1).
func (c *Client) Continue(budget int64) (cpu.Stop, error) {
	resp, err := c.call(fmt.Sprintf("c%d", budget))
	if err != nil {
		return cpu.Stop{}, err
	}
	return decodeStop(resp)
}

// Reset warm-resets the board; a boot failure (corrupt image) surfaces as a
// RemoteError with code "boot", permanent death as code "dead".
func (c *Client) Reset() error {
	_, err := c.call("r")
	return err
}

// PowerCycle drops board power and cold-boots — the recovery ladder's last
// rung before giving up on the board. Slower than Reset but clears marginal
// conditions a warm reset cannot. Probe firmware that predates the command
// answers Ebadcmd.
func (c *Client) PowerCycle() error {
	_, err := c.call("R")
	return err
}

// FlashErase erases the flash range [off, off+n).
func (c *Client) FlashErase(off, n int) error {
	_, err := c.call(fmt.Sprintf("vFlashErase:%x,%x", off, n))
	return err
}

// flashChunk bounds one vFlashWrite payload; larger images stream in pieces,
// as debug probes with small adapter buffers do.
const flashChunk = 16 * 1024

// FlashWrite programs data at flash offset off (erase first), chunking the
// transfer to fit the adapter's packet limit.
func (c *Client) FlashWrite(off int, data []byte) error {
	for start := 0; start < len(data); start += flashChunk {
		end := start + flashChunk
		if end > len(data) {
			end = len(data)
		}
		_, err := c.call(fmt.Sprintf("vFlashWrite:%x:%s", off+start, hex.EncodeToString(data[start:end])))
		if err != nil {
			return err
		}
	}
	return nil
}

// DrainCov atomically reads and clears the target coverage buffer at addr in
// a single round trip: the server reads the header, transfers up to
// maxEntries valid entries, and zeroes the count and lost words before
// replying. The legacy sequence (speculative read, tail read, clear write)
// costs three round trips; on probe-latency-dominated links this is the
// single largest per-exec saving.
func (c *Client) DrainCov(addr uint64, maxEntries int) (entries []uint32, lost uint32, err error) {
	resp, err := c.call(fmt.Sprintf("vCovDrain:%x,%x", addr, maxEntries))
	if err != nil {
		return nil, 0, err
	}
	if !strings.HasPrefix(resp, "V") {
		return nil, 0, fmt.Errorf("ocd: bad drain reply %q", resp)
	}
	body := resp[1:]
	semi := strings.IndexByte(body, ';')
	if semi < 0 {
		return nil, 0, fmt.Errorf("ocd: bad drain reply %q", resp)
	}
	l, err := strconv.ParseUint(body[:semi], 16, 32)
	if err != nil {
		return nil, 0, fmt.Errorf("ocd: bad drain lost count: %v", err)
	}
	raw, err := hex.DecodeString(body[semi+1:])
	if err != nil {
		return nil, 0, fmt.Errorf("ocd: bad drain payload: %v", err)
	}
	if len(raw)%4 != 0 {
		return nil, 0, fmt.Errorf("ocd: ragged drain payload (%d bytes)", len(raw))
	}
	entries = make([]uint32, len(raw)/4)
	for i := range entries {
		entries[i] = uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 | uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24
	}
	return entries, uint32(l), nil
}

// WriteMemContinue coalesces a mailbox write with the resume that follows it
// into one round trip: the server performs the memory write, then continues
// the target with the given step budget and replies with the stop event.
func (c *Client) WriteMemContinue(addr uint64, data []byte, budget int64) (cpu.Stop, error) {
	resp, err := c.call(fmt.Sprintf("vRun:%x,%d:%s", addr, budget, hex.EncodeToString(data)))
	if err != nil {
		return cpu.Stop{}, err
	}
	return decodeStop(resp)
}

// Snapshot asks the probe to capture the board's current flash, RAM and
// breakpoint state as the golden image RestoreSnapshot rolls back to. One
// round trip; the capture itself happens probe-side. Probe firmware that
// predates the vectored commands answers Ebadcmd.
func (c *Client) Snapshot() error {
	_, err := c.call("vSnap")
	return err
}

// RestoreSnapshot asks the probe to roll the board back to the cached
// snapshot, shipping only the dirty delta and replaying to the snapshot's
// breakpoint park — the whole restore costs one round trip instead of the
// reset/reflash/re-arm/run-to-main ladder. A missing snapshot surfaces as a
// RemoteError with code "snap"; legacy probes answer Ebadcmd.
func (c *Client) RestoreSnapshot() (board.RestoreStats, error) {
	var st board.RestoreStats
	resp, err := c.call("vRestore")
	if err != nil {
		return st, err
	}
	if !strings.HasPrefix(resp, "S") {
		return st, fmt.Errorf("ocd: bad restore reply %q", resp)
	}
	parts := strings.Split(resp[1:], ",")
	if len(parts) != 4 {
		return st, fmt.Errorf("ocd: bad restore reply %q", resp)
	}
	vals := make([]int64, 4)
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 16, 64)
		if err != nil {
			return st, fmt.Errorf("ocd: bad restore reply %q: %v", resp, err)
		}
		vals[i] = v
	}
	st.FlashSectors = int(vals[0])
	st.RAMPages = int(vals[1])
	st.RestoredBytes = vals[2]
	st.SkippedBytes = vals[3]
	return st, nil
}

// DrainUART returns console lines emitted since the previous drain.
func (c *Client) DrainUART() ([]string, error) {
	resp, err := c.call("qUART")
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(resp, "L") {
		return nil, fmt.Errorf("ocd: bad uart reply %q", resp)
	}
	body := resp[1:]
	if body == "" {
		return nil, nil
	}
	parts := strings.Split(body, ";")
	lines := make([]string, 0, len(parts))
	for _, p := range parts {
		b, err := hex.DecodeString(p)
		if err != nil {
			return nil, fmt.Errorf("ocd: bad uart line: %v", err)
		}
		lines = append(lines, string(b))
	}
	return lines, nil
}

// BoardState queries power/liveness state, boot count and the last boot
// error message (empty when none).
func (c *Client) BoardState() (st board.State, boots int, lastBoot string, err error) {
	resp, err := c.call("?")
	if err != nil {
		return 0, 0, "", err
	}
	if !strings.HasPrefix(resp, "Qstate:") {
		return 0, 0, "", fmt.Errorf("ocd: bad state reply %q", resp)
	}
	for _, f := range strings.Split(resp[1:], ";") {
		k, v, ok := strings.Cut(f, ":")
		if !ok {
			continue
		}
		switch k {
		case "state":
			switch v {
			case "off":
				st = board.Off
			case "on":
				st = board.On
			case "bricked":
				st = board.Bricked
			case "dead":
				st = board.Dead
			default:
				return 0, 0, "", fmt.Errorf("ocd: unknown state %q", v)
			}
		case "boots":
			boots, _ = strconv.Atoi(v)
		case "lastboot":
			if b, derr := hex.DecodeString(v); derr == nil {
				lastBoot = string(b)
			}
		}
	}
	return st, boots, lastBoot, nil
}
