// Package ocd implements the debug probe: an OpenOCD-like server that owns a
// board and exposes it over the RSP-style wire protocol, and the host-side
// client the fuzzer uses. All control and observation — memory access,
// breakpoints, execution, reflash, UART capture — flows through this one
// channel, mirroring the paper's single vendor-agnostic debug interface.
//
// The server also charges virtual time per command (adapter round trip plus
// payload transfer), which is what makes on-hardware fuzzing throughput land
// in the paper's regime of a few payloads per second.
package ocd

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/rsp"
)

// Latency models the debug adapter's cost per operation.
type Latency struct {
	// PerCommand is the fixed round-trip cost of one command.
	PerCommand time.Duration
	// BytesPerSec is the payload transfer bandwidth.
	BytesPerSec int
}

// DefaultLatency approximates a USB JTAG adapter driven through OpenOCD.
func DefaultLatency() Latency {
	return Latency{PerCommand: 45 * time.Millisecond, BytesPerSec: 512 * 1024}
}

// transfer returns the time to move n payload bytes.
func (l Latency) transfer(n int) time.Duration {
	if l.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(n) * time.Second / time.Duration(l.BytesPerSec)
}

// Server owns a board and serves debug commands.
type Server struct {
	Board *board.Board
	Lat   Latency
	// NoVectored rejects the vectored commands (vCovDrain, vRun) with
	// Ebadcmd, modelling probe firmware that predates them; clients fall
	// back to the multi-round-trip sequences.
	NoVectored bool
}

// NewServer creates a server for b with the given latency model.
func NewServer(b *board.Board, lat Latency) *Server {
	return &Server{Board: b, Lat: lat}
}

// Serve processes commands on rw until the link closes or detach.
func (s *Server) Serve(rw io.ReadWriter) error {
	conn := rsp.NewConn(rw)
	for {
		req, err := conn.Recv()
		if err != nil {
			if errors.Is(err, rsp.ErrLinkClosed) {
				return nil
			}
			return err
		}
		resp, detach := s.handle(string(req))
		if err := conn.Send([]byte(resp)); err != nil {
			if errors.Is(err, rsp.ErrLinkClosed) {
				return nil
			}
			return err
		}
		if detach {
			return nil
		}
	}
}

func (s *Server) charge(payloadBytes int) {
	s.Board.Clock.Advance(s.Lat.PerCommand + s.Lat.transfer(payloadBytes))
}

// ereply renders a bare error reply for code c.
func ereply(c Code) string { return "E" + string(c) }

// ereplyMsg renders an error reply carrying a hex-encoded message.
func ereplyMsg(c Code, msg string) string {
	return "E" + string(c) + ":" + hex.EncodeToString([]byte(msg))
}

func (s *Server) handle(req string) (resp string, detach bool) {
	s.charge(len(req))
	switch {
	case req == "?":
		return s.stateReply(), false
	case req == "D":
		return "OK", true
	case req == "qUART":
		return s.uartReply(), false
	case strings.HasPrefix(req, "m"):
		return s.readMem(req[1:]), false
	case strings.HasPrefix(req, "M"):
		return s.writeMem(req[1:]), false
	case strings.HasPrefix(req, "Z0,"):
		return s.setBP(req[3:]), false
	case strings.HasPrefix(req, "z0,"):
		return s.clearBP(req[3:]), false
	case strings.HasPrefix(req, "c"):
		return s.cont(req[1:]), false
	case req == "r":
		return s.reset(), false
	case req == "R":
		return s.powerCycle(), false
	case strings.HasPrefix(req, "vFlashErase:"):
		return s.flashErase(req[len("vFlashErase:"):]), false
	case strings.HasPrefix(req, "vFlashWrite:"):
		return s.flashWrite(req[len("vFlashWrite:"):]), false
	case strings.HasPrefix(req, "vCovDrain:"):
		if s.NoVectored {
			return ereply(CodeBadCmd), false
		}
		return s.covDrain(req[len("vCovDrain:"):]), false
	case strings.HasPrefix(req, "vRun:"):
		if s.NoVectored {
			return ereply(CodeBadCmd), false
		}
		return s.writeRun(req[len("vRun:"):]), false
	case req == "vSnap":
		if s.NoVectored {
			return ereply(CodeBadCmd), false
		}
		return s.snapshot(), false
	case req == "vRestore":
		if s.NoVectored {
			return ereply(CodeBadCmd), false
		}
		return s.restore(), false
	default:
		return ereply(CodeBadCmd), false
	}
}

func (s *Server) stateReply() string {
	st := s.Board.State()
	last := ""
	if err := s.Board.LastBootError(); err != nil {
		last = hex.EncodeToString([]byte(err.Error()))
	}
	return fmt.Sprintf("Qstate:%s;boots:%d;lastboot:%s", st, s.Board.BootCount(), last)
}

func (s *Server) uartReply() string {
	lines := s.Board.UART().Drain()
	parts := make([]string, len(lines))
	for i, l := range lines {
		parts[i] = hex.EncodeToString([]byte(l.Text))
	}
	return "L" + strings.Join(parts, ";")
}

// live reports whether the CPU is reachable; when it is not, commands that
// need a running core time out, which is the watchdog's boot-failure signal.
func (s *Server) live() bool {
	return s.Board.State() == board.On && !s.Board.Core().Dead()
}

func (s *Server) readMem(args string) string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	addr, n, err := parseAddrLen(args)
	if err != nil {
		return ereply(CodeBadArgs)
	}
	data, err := s.Board.Mem().Read(addr, n)
	if err != nil {
		return ereplyMsg(CodeMem, err.Error())
	}
	s.charge(n) // response payload costs link time too
	return "D" + hex.EncodeToString(data)
}

func (s *Server) writeMem(args string) string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	colon := strings.IndexByte(args, ':')
	if colon < 0 {
		return ereply(CodeBadArgs)
	}
	addr, n, err := parseAddrLen(args[:colon])
	if err != nil {
		return ereply(CodeBadArgs)
	}
	data, err := hex.DecodeString(args[colon+1:])
	if err != nil || len(data) != n {
		return ereply(CodeBadArgs)
	}
	if err := s.Board.Mem().Write(addr, data); err != nil {
		return ereplyMsg(CodeMem, err.Error())
	}
	return "OK"
}

func (s *Server) setBP(arg string) string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	addr, err := strconv.ParseUint(arg, 16, 64)
	if err != nil {
		return ereply(CodeBadArgs)
	}
	if err := s.Board.Core().SetBreakpoint(addr); err != nil {
		return ereplyMsg(CodeBP, err.Error())
	}
	return "OK"
}

func (s *Server) clearBP(arg string) string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	addr, err := strconv.ParseUint(arg, 16, 64)
	if err != nil {
		return ereply(CodeBadArgs)
	}
	s.Board.Core().ClearBreakpoint(addr)
	return "OK"
}

func (s *Server) cont(arg string) string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	budget := int64(2_000_000)
	if arg != "" {
		b, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || b <= 0 {
			return ereply(CodeBadArgs)
		}
		budget = b
	}
	stop := s.Board.Core().Continue(budget)
	return encodeStop(stop)
}

func (s *Server) reset() string {
	if err := s.Board.Reset(); err != nil {
		return ereplyMsg(bootCode(err), err.Error())
	}
	return "OK"
}

// powerCycle implements "R": drop board power, wait for the rails to settle
// and cold-boot. The slow rung of the recovery ladder.
func (s *Server) powerCycle() string {
	if err := s.Board.PowerCycle(); err != nil {
		return ereplyMsg(bootCode(err), err.Error())
	}
	return "OK"
}

// bootCode classifies a boot-path failure: permanent hardware death gets its
// own code so the host can stop climbing the recovery ladder.
func bootCode(err error) Code {
	if errors.Is(err, board.ErrDead) {
		return CodeDead
	}
	return CodeBoot
}

func (s *Server) flashErase(args string) string {
	off, n, err := parseAddrLen(args)
	if err != nil {
		return ereply(CodeBadArgs)
	}
	if err := s.Board.FlashErase(int(off), n); err != nil {
		if errors.Is(err, board.ErrDead) {
			return ereplyMsg(CodeDead, err.Error())
		}
		return ereplyMsg(CodeFlash, err.Error())
	}
	return "OK"
}

func (s *Server) flashWrite(args string) string {
	colon := strings.IndexByte(args, ':')
	if colon < 0 {
		return ereply(CodeBadArgs)
	}
	off, err := strconv.ParseUint(args[:colon], 16, 64)
	if err != nil {
		return ereply(CodeBadArgs)
	}
	data, err := hex.DecodeString(args[colon+1:])
	if err != nil {
		return ereply(CodeBadArgs)
	}
	if err := s.Board.FlashProgram(int(off), data); err != nil {
		if errors.Is(err, board.ErrDead) {
			return ereplyMsg(CodeDead, err.Error())
		}
		return ereplyMsg(CodeFlash, err.Error())
	}
	return "OK"
}

// covDrain implements vCovDrain:<addr>,<maxEntries> — the vectored
// drain-and-clear. The probe reads the coverage header, transfers up to
// maxEntries valid entries and zeroes the count and lost words before
// replying, so the whole drain costs one adapter round trip instead of the
// legacy read/tail-read/clear triple.
func (s *Server) covDrain(args string) string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	addr, maxEntries, err := parseAddrLen(args)
	if err != nil {
		return ereply(CodeBadArgs)
	}
	hdr, err := s.Board.Mem().Read(addr, 16)
	if err != nil {
		return ereplyMsg(CodeMem, err.Error())
	}
	if m := le32(hdr, 0); m != cov.Magic {
		return ereplyMsg(CodeCov, fmt.Sprintf("bad magic %#x", m))
	}
	count := int(le32(hdr, 4))
	capacity := int(le32(hdr, 8))
	lost := le32(hdr, 12)
	if count > capacity {
		return ereplyMsg(CodeCov, fmt.Sprintf("corrupt header count=%d cap=%d", count, capacity))
	}
	if count > maxEntries {
		count = maxEntries
	}
	var raw []byte
	if count > 0 {
		raw, err = s.Board.Mem().Read(addr+16, count*4)
		if err != nil {
			return ereplyMsg(CodeMem, err.Error())
		}
	}
	// Clear count and lost atomically with the read: the target resumes
	// into an empty buffer with no host round trip in between.
	if err := s.Board.Mem().Write(addr+4, []byte{0, 0, 0, 0}); err != nil {
		return ereplyMsg(CodeMem, err.Error())
	}
	if err := s.Board.Mem().Write(addr+12, []byte{0, 0, 0, 0}); err != nil {
		return ereplyMsg(CodeMem, err.Error())
	}
	s.charge(len(raw)) // response payload costs link time, as in readMem
	return fmt.Sprintf("V%x;%s", lost, hex.EncodeToString(raw))
}

// writeRun implements vRun:<addr>,<budget>:<hexdata> — a coalesced memory
// write plus continue. The mailbox payload and the resume that consumes it
// always travel together, so fusing them saves one round trip per exec.
func (s *Server) writeRun(args string) string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	colon := strings.IndexByte(args, ':')
	if colon < 0 {
		return ereply(CodeBadArgs)
	}
	comma := strings.IndexByte(args[:colon], ',')
	if comma < 0 {
		return ereply(CodeBadArgs)
	}
	addr, err := strconv.ParseUint(args[:comma], 16, 64)
	if err != nil {
		return ereply(CodeBadArgs)
	}
	budget, err := strconv.ParseInt(args[comma+1:colon], 10, 64)
	if err != nil || budget <= 0 {
		return ereply(CodeBadArgs)
	}
	data, err := hex.DecodeString(args[colon+1:])
	if err != nil {
		return ereply(CodeBadArgs)
	}
	if err := s.Board.Mem().Write(addr, data); err != nil {
		return ereplyMsg(CodeMem, err.Error())
	}
	stop := s.Board.Core().Continue(budget)
	return encodeStop(stop)
}

// snapshot implements vSnap: the probe captures the board's flash, RAM and
// breakpoint state as the golden image vRestore rolls back to, and resets the
// board's dirty tracking. The capture happens probe-side, so the host pays
// one round trip, not a full state read-back.
func (s *Server) snapshot() string {
	if !s.live() {
		return ereply(CodeTimeout)
	}
	if err := s.Board.Snapshot(); err != nil {
		return ereplyMsg(CodeSnap, err.Error())
	}
	return "OK"
}

// restore implements vRestore: the probe diffs the board's dirty state
// against the cached golden snapshot, re-ships only the delta, and replays
// the target back to its snapshot park point. One round trip replaces the
// reset/reflash/re-arm/run-to-main sequence. The reply is
// S<flashSectors:x>,<ramPages:x>,<restoredBytes:x>,<skippedBytes:x>.
func (s *Server) restore() string {
	if s.Board.State() == board.Dead {
		return ereplyMsg(CodeDead, "board dead")
	}
	if !s.Board.HasSnapshot() {
		return ereply(CodeSnap)
	}
	st, err := s.Board.RestoreSnapshot()
	if err != nil {
		switch {
		case errors.Is(err, board.ErrDead):
			return ereplyMsg(CodeDead, err.Error())
		case errors.Is(err, board.ErrNoSnapshot):
			return ereply(CodeSnap)
		default:
			return ereplyMsg(CodeFlash, err.Error())
		}
	}
	return fmt.Sprintf("S%x,%x,%x,%x", st.FlashSectors, st.RAMPages, st.RestoredBytes, st.SkippedBytes)
}

// le32 decodes a little-endian u32 at offset off.
func le32(b []byte, off int) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}

func parseAddrLen(s string) (addr uint64, n int, err error) {
	comma := strings.IndexByte(s, ',')
	if comma < 0 {
		return 0, 0, fmt.Errorf("missing comma")
	}
	addr, err = strconv.ParseUint(s[:comma], 16, 64)
	if err != nil {
		return 0, 0, err
	}
	ln, err := strconv.ParseUint(s[comma+1:], 16, 32)
	if err != nil {
		return 0, 0, err
	}
	return addr, int(ln), nil
}

// encodeStop renders a cpu.Stop as a T-reply:
//
//	T<kind>;<pcHex>[;F<fkind>;<msgHex>;<file|func|line hex triples ','-joined>]
func encodeStop(st cpu.Stop) string {
	var b strings.Builder
	fmt.Fprintf(&b, "T%d;%x", int(st.Kind), st.PC)
	if st.Fault != nil {
		fmt.Fprintf(&b, ";F%d;%s;", int(st.Fault.Kind), hex.EncodeToString([]byte(st.Fault.Msg)))
		for i, fr := range st.Fault.Frames {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s|%s|%d",
				hex.EncodeToString([]byte(fr.File)), hex.EncodeToString([]byte(fr.Func)), fr.Line)
		}
	}
	return b.String()
}

// decodeStop parses a T-reply back into a cpu.Stop.
func decodeStop(s string) (cpu.Stop, error) {
	if !strings.HasPrefix(s, "T") {
		return cpu.Stop{}, fmt.Errorf("ocd: not a stop reply: %q", s)
	}
	fields := strings.Split(s[1:], ";")
	if len(fields) < 2 {
		return cpu.Stop{}, fmt.Errorf("ocd: short stop reply: %q", s)
	}
	kind, err := strconv.Atoi(fields[0])
	if err != nil {
		return cpu.Stop{}, fmt.Errorf("ocd: bad stop kind: %q", s)
	}
	pc, err := strconv.ParseUint(fields[1], 16, 64)
	if err != nil {
		return cpu.Stop{}, fmt.Errorf("ocd: bad stop pc: %q", s)
	}
	st := cpu.Stop{Kind: cpu.StopKind(kind), PC: pc}
	if len(fields) >= 4 && strings.HasPrefix(fields[2], "F") {
		fkind, err := strconv.Atoi(fields[2][1:])
		if err != nil {
			return cpu.Stop{}, fmt.Errorf("ocd: bad fault kind: %q", s)
		}
		msg, err := hex.DecodeString(fields[3])
		if err != nil {
			return cpu.Stop{}, fmt.Errorf("ocd: bad fault msg: %q", s)
		}
		f := &cpu.Fault{Kind: cpu.FaultKind(fkind), PC: pc, Msg: string(msg)}
		if len(fields) >= 5 && fields[4] != "" {
			for _, tr := range strings.Split(fields[4], ",") {
				parts := strings.Split(tr, "|")
				if len(parts) != 3 {
					return cpu.Stop{}, fmt.Errorf("ocd: bad frame: %q", tr)
				}
				file, err1 := hex.DecodeString(parts[0])
				fn, err2 := hex.DecodeString(parts[1])
				line, err3 := strconv.Atoi(parts[2])
				if err1 != nil || err2 != nil || err3 != nil {
					return cpu.Stop{}, fmt.Errorf("ocd: bad frame: %q", tr)
				}
				f.Frames = append(f.Frames, cpu.Frame{File: string(file), Func: string(fn), Line: line})
			}
		}
		st.Fault = f
	}
	return st, nil
}
