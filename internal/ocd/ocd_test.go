package ocd

import (
	"errors"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/board"
	"github.com/eof-fuzz/eof/internal/cov"
	"github.com/eof-fuzz/eof/internal/cpu"
	"github.com/eof-fuzz/eof/internal/flash"
	"github.com/eof-fuzz/eof/internal/vtime"
)

// testFirmware spins between two blocks and logs once at startup.
type testFirmware struct {
	env *board.Env
}

func (f *testFirmware) Main() {
	f.env.UART.WriteString("fw: up\n")
	for {
		f.env.Core.Step(f.env.Spec.FlashBase + 0x1000)
		f.env.Core.Step(f.env.Spec.FlashBase + 0x1004)
	}
}

func testBoard(t *testing.T) (*board.Board, *flash.Image) {
	t.Helper()
	spec := &board.Spec{
		Name: "t", Arch: "arm", HZ: 100_000_000,
		CyclesPerBlock: 4, MaxBreakpoints: 4,
		FlashBase: 0x0800_0000, FlashSize: 1 << 20, SectorSize: 4096,
		RAMBase: 0x2000_0000, RAMSize: 128 * 1024, CovEntries: 64,
	}
	table, err := flash.ParseTable("boot, app, 0x0, 0x8000\nkernel, app, 0x8000, 0x40000\n")
	if err != nil {
		t.Fatal(err)
	}
	// Rename for the boot path's expectations.
	table.Parts[0].Name = "bootloader"
	builder := func(env *board.Env) (board.Firmware, error) {
		return &testFirmware{env: env}, nil
	}
	b, err := board.New(spec, table, builder, &vtime.Clock{})
	if err != nil {
		t.Fatal(err)
	}
	kimg := &flash.Image{Magic: flash.MagicKernel, OS: "t", BuildID: 9, CodeSize: 256}
	bimg := &flash.Image{Magic: flash.MagicBoot, OS: "t", BuildID: 9, CodeSize: 64}
	if err := b.Provision("bootloader", bimg.Serialize()); err != nil {
		t.Fatal(err)
	}
	if err := b.Provision("kernel", kimg.Serialize()); err != nil {
		t.Fatal(err)
	}
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	return b, kimg
}

// clients returns both transports so every test runs against each.
func clients(t *testing.T, b *board.Board) map[string]*Client {
	srv := NewServer(b, Latency{PerCommand: time.Millisecond, BytesPerSec: 1 << 20})
	return map[string]*Client{
		"piped":  Connect(srv),
		"direct": ConnectDirect(srv),
	}
}

func TestMemoryCommands(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	for name, c := range clients(t, b) {
		t.Run(name, func(t *testing.T) {
			if err := c.WriteMem(0x2000_0100, []byte{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			got, err := c.ReadMem(0x2000_0100, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != 1 || got[3] != 4 {
				t.Fatalf("readback: %v", got)
			}
			// Bad address surfaces as a remote error, not a timeout.
			if _, err := c.ReadMem(0xDEAD_0000, 4); err == nil || errors.Is(err, ErrTimeout) {
				t.Fatalf("unmapped read: %v", err)
			}
			var re *RemoteError
			if _, err := c.ReadMem(0xDEAD_0000, 4); !errors.As(err, &re) || re.Code != "mem" {
				t.Fatalf("remote error: %v", err)
			}
		})
	}
}

func TestBreakpointAndContinue(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	c := ConnectDirect(NewServer(b, DefaultLatency()))
	addr := b.Spec.FlashBase + 0x1004
	if err := c.SetBreakpoint(addr); err != nil {
		t.Fatal(err)
	}
	st, err := c.Continue(1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != cpu.StopBreakpoint || st.PC != addr {
		t.Fatalf("stop: %+v", st)
	}
	if err := c.ClearBreakpoint(addr); err != nil {
		t.Fatal(err)
	}
	st, err = c.Continue(100)
	if err != nil || st.Kind != cpu.StopBudget {
		t.Fatalf("after clear: %+v %v", st, err)
	}
}

func TestUARTDrain(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	c := ConnectDirect(NewServer(b, DefaultLatency()))
	c.Continue(10)
	lines, err := c.DrainUART()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if l == "fw: up" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lines: %q", lines)
	}
	lines, _ = c.DrainUART()
	if len(lines) != 0 {
		t.Fatalf("drain not incremental: %q", lines)
	}
}

func TestBoardStateQuery(t *testing.T) {
	b, _ := testBoard(t)
	defer func() {
		if b.State() == board.On {
			b.Core().Kill()
		}
	}()
	c := ConnectDirect(NewServer(b, DefaultLatency()))
	st, boots, last, err := c.BoardState()
	if err != nil || st != board.On || boots != 1 || last != "" {
		t.Fatalf("state: %v %d %q %v", st, boots, last, err)
	}
}

func TestTimeoutWhenBricked(t *testing.T) {
	b, _ := testBoard(t)
	c := ConnectDirect(NewServer(b, DefaultLatency()))
	// Corrupt the kernel image, then reset: boot fails, board bricked.
	b.Flash().Corrupt(0x8000+30, 16, 0)
	if err := c.Reset(); err == nil {
		t.Fatal("reset succeeded on corrupt image")
	}
	if _, err := c.Continue(10); !errors.Is(err, ErrTimeout) {
		t.Fatalf("continue on bricked board: %v", err)
	}
	if _, err := c.ReadMem(0x2000_0000, 4); !errors.Is(err, ErrTimeout) {
		t.Fatalf("read on bricked board: %v", err)
	}
	// Flash access still works and revives the board.
	kimg := &flash.Image{Magic: flash.MagicKernel, OS: "t", BuildID: 9, CodeSize: 256}
	if err := c.FlashErase(0x8000, 0x40000); err != nil {
		t.Fatal(err)
	}
	if err := c.FlashWrite(0x8000, kimg.Serialize()); err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(); err != nil {
		t.Fatalf("reset after reflash: %v", err)
	}
	st, boots, _, _ := c.BoardState()
	if st != board.On || boots != 2 {
		t.Fatalf("after revive: %v %d", st, boots)
	}
	b.Core().Kill()
}

func TestLatencyCharged(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	srv := NewServer(b, Latency{PerCommand: 10 * time.Millisecond, BytesPerSec: 1 << 20})
	c := ConnectDirect(srv)
	before := b.Clock.Now()
	if _, err := c.ReadMem(0x2000_0000, 64); err != nil {
		t.Fatal(err)
	}
	if d := b.Clock.Now() - before; d < 10*time.Millisecond {
		t.Fatalf("latency not charged: %v", d)
	}
}

func TestStopEncodingRoundTrip(t *testing.T) {
	st := cpu.Stop{
		Kind: cpu.StopFault,
		PC:   0x800_1234,
		Fault: &cpu.Fault{
			Kind: cpu.FaultBus,
			PC:   0x800_1234,
			Msg:  "wild pointer; special: ;|,#$",
			Frames: []cpu.Frame{
				{File: "a.c", Func: "f1", Line: 10},
				{File: "b/c.c", Func: "f2", Line: 200},
			},
		},
	}
	got, err := decodeStop(encodeStop(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != st.Kind || got.PC != st.PC || got.Fault.Msg != st.Fault.Msg {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Fault.Frames) != 2 || got.Fault.Frames[1] != st.Fault.Frames[1] {
		t.Fatalf("frames: %+v", got.Fault.Frames)
	}
	// No fault.
	got, err = decodeStop(encodeStop(cpu.Stop{Kind: cpu.StopBudget, PC: 4}))
	if err != nil || got.Fault != nil || got.Kind != cpu.StopBudget {
		t.Fatalf("plain stop: %+v %v", got, err)
	}
}

// writeCovBuffer fabricates a coverage buffer in target RAM via the debug
// link: header (magic, count, capacity, lost) plus count LE u32 entries.
func writeCovBuffer(t *testing.T, c *Client, addr uint64, entries []uint32, capacity int, lost uint32) {
	t.Helper()
	buf := make([]byte, 16+len(entries)*4)
	put := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	put(0, cov.Magic)
	put(4, uint32(len(entries)))
	put(8, uint32(capacity))
	put(12, lost)
	for i, e := range entries {
		put(16+i*4, e)
	}
	if err := c.WriteMem(addr, buf); err != nil {
		t.Fatal(err)
	}
}

func TestVectoredCovDrain(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	const addr = 0x2000_4000
	want := []uint32{0x11, 0x2222, 0x333333, 0x44444444, 0x5}
	for name, c := range clients(t, b) {
		t.Run(name, func(t *testing.T) {
			writeCovBuffer(t, c, addr, want, 64, 2)
			got, lost, err := c.DrainCov(addr, 64)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) || lost != 2 {
				t.Fatalf("drain: %d entries lost=%d", len(got), lost)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("entry %d: %#x != %#x", i, got[i], want[i])
				}
			}
			// The drain must have cleared the count and lost words so the
			// runtime can refill the buffer.
			hdr, err := c.ReadMem(addr, 16)
			if err != nil {
				t.Fatal(err)
			}
			if cnt := uint32(hdr[4]) | uint32(hdr[5])<<8; cnt != 0 {
				t.Fatalf("count not cleared: %d", cnt)
			}
			if l := uint32(hdr[12]) | uint32(hdr[13])<<8; l != 0 {
				t.Fatalf("lost not cleared: %d", l)
			}
			got, lost, err = c.DrainCov(addr, 64)
			if err != nil || len(got) != 0 || lost != 0 {
				t.Fatalf("second drain: %d entries lost=%d err=%v", len(got), lost, err)
			}
		})
	}
}

// TestVectoredDrainErrors exercises remote-error propagation of the vectored
// commands over the framed transport (Connect), not just the in-process
// dispatch: corrupt header -> "cov", unmapped address -> "mem", vectored
// commands rejected by older probe firmware -> "badcmd".
func TestVectoredDrainErrors(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	srv := NewServer(b, Latency{PerCommand: time.Millisecond, BytesPerSec: 1 << 20})
	c := Connect(srv)
	defer c.Close()

	const addr = 0x2000_4000
	// No magic at addr yet: the server must refuse to treat it as a buffer.
	var re *RemoteError
	if _, _, err := c.DrainCov(addr, 64); !errors.As(err, &re) || re.Code != "cov" {
		t.Fatalf("corrupt header: %v", err)
	}
	// Count exceeding capacity is corruption too.
	writeCovBuffer(t, c, addr, []uint32{1, 2, 3}, 2, 0)
	if _, _, err := c.DrainCov(addr, 64); !errors.As(err, &re) || re.Code != "cov" {
		t.Fatalf("count > capacity: %v", err)
	}
	// Unmapped address propagates the memory fault.
	if _, _, err := c.DrainCov(0xDEAD_0000, 64); !errors.As(err, &re) || re.Code != "mem" {
		t.Fatalf("unmapped: %v", err)
	}

	// A probe without vectored support rejects both commands with "badcmd"
	// (the client-side engine falls back to the legacy sequences on this).
	srv.NoVectored = true
	if _, _, err := c.DrainCov(addr, 64); !errors.As(err, &re) || re.Code != "badcmd" {
		t.Fatalf("novectored drain: %v", err)
	}
	if _, err := c.WriteMemContinue(addr, []byte{1}, 10); !errors.As(err, &re) || re.Code != "badcmd" {
		t.Fatalf("novectored run: %v", err)
	}
}

func TestWriteMemContinue(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	for name, c := range clients(t, b) {
		t.Run(name, func(t *testing.T) {
			payload := []byte{9, 8, 7, 6}
			addr := uint64(0x2000_0200)
			before := b.Clock.Now()
			st, err := c.WriteMemContinue(addr, payload, 100)
			if err != nil {
				t.Fatal(err)
			}
			if st.Kind != cpu.StopBudget {
				t.Fatalf("stop: %+v", st)
			}
			// One coalesced command charges exactly one per-command round
			// trip (the clients helper uses 1ms per command), plus transfer
			// and execution time well under a second round trip.
			if d := b.Clock.Now() - before; d < time.Millisecond || d >= 2*time.Millisecond {
				t.Fatalf("write+continue charged %v, want one ~1ms round trip", d)
			}
			back, err := c.ReadMem(addr, len(payload))
			if err != nil {
				t.Fatal(err)
			}
			for i := range payload {
				if back[i] != payload[i] {
					t.Fatalf("readback: %v", back)
				}
			}
		})
	}
}

func TestBadCommands(t *testing.T) {
	b, _ := testBoard(t)
	defer b.Core().Kill()
	srv := NewServer(b, DefaultLatency())
	for _, req := range []string{"zzz", "m", "mxx,4", "Z0,zz", "cNaN", "M100", "vFlashErase:x"} {
		resp, _ := srv.handle(req)
		if len(resp) == 0 || resp[0] != 'E' {
			t.Errorf("handle(%q) = %q, want error", req, resp)
		}
	}
}
