package ocd

import "errors"

// Code is a typed debug-server error code. The server emits codes on the wire
// as "E<code>[:<hex msg>]" and the client decodes them back into RemoteError
// values, so both sides of the link share one taxonomy and layered middleware
// (the session layer's transient/fatal classification, the engine's vectored
// fallback) can match on constants instead of string literals.
type Code string

// The debug-server error taxonomy. Every code describes target or probe
// state, not link health: a command that earns one of these was delivered,
// parsed and answered, so retrying it verbatim cannot help. Link-level
// failures (dropped frames, a dead adapter) surface as ErrTimeout or as
// internal/link fault errors instead, and only those are retried.
const (
	// CodeTimeout is the wire form of ErrTimeout: the target did not
	// respond (dead core, boot failure). decodeError maps it to ErrTimeout
	// rather than a RemoteError so the watchdog machinery sees one type.
	CodeTimeout Code = "timeout"
	// CodeBadCmd rejects a command the probe firmware does not know; the
	// engine latches the legacy fallback for vectored commands on it.
	CodeBadCmd Code = "badcmd"
	// CodeBadArgs rejects a malformed command payload.
	CodeBadArgs Code = "badargs"
	// CodeMem reports a target memory fault (unmapped address, permission).
	CodeMem Code = "mem"
	// CodeBP reports a breakpoint failure (comparator bank exhausted).
	CodeBP Code = "bp"
	// CodeFlash reports a flash erase/program failure.
	CodeFlash Code = "flash"
	// CodeBoot reports a boot failure after reset (corrupt image).
	CodeBoot Code = "boot"
	// CodeCov reports a corrupt coverage buffer header.
	CodeCov Code = "cov"
	// CodeDead reports permanent board death: the hardware will never boot
	// again, so no recovery rung (reset, reflash, power cycle) can help.
	// The engine maps it to core.ErrBoardDead for fleet supervisors.
	CodeDead Code = "dead"
	// CodeSnap reports a snapshot-restore failure with no snapshot cached:
	// the probe has nothing to diff against, so the host must fall back to
	// the full restore ladder and re-take a snapshot.
	CodeSnap Code = "snap"
)

// IsCode reports whether err is a RemoteError carrying code c.
func IsCode(err error, c Code) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == c
}
