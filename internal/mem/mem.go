// Package mem implements the target memory map: named regions with base
// addresses, sizes and permissions, backed by byte slabs. The debug link and
// the on-target runtime both go through this map, so out-of-range or
// permission-violating accesses surface as bus faults exactly where a real
// MCU would raise them.
package mem

import (
	"errors"
	"fmt"
	"sort"
)

// Perm is a region permission bitmask.
type Perm uint8

// Permission bits.
const (
	Read Perm = 1 << iota
	Write
	Exec
)

// RW is the usual RAM permission set.
const RW = Read | Write

// RX is the usual flash/code permission set.
const RX = Read | Exec

func (p Perm) String() string {
	b := []byte("---")
	if p&Read != 0 {
		b[0] = 'r'
	}
	if p&Write != 0 {
		b[1] = 'w'
	}
	if p&Exec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// BusFault describes an invalid memory access. It satisfies error and carries
// enough detail for crash reports.
type BusFault struct {
	Addr uint64
	Size int
	Op   string // "read", "write", "exec"
	Why  string // "unmapped", "perm", "straddle"
}

func (f *BusFault) Error() string {
	return fmt.Sprintf("bus fault: %s of %d bytes at %#x (%s)", f.Op, f.Size, f.Addr, f.Why)
}

// IsBusFault reports whether err is (or wraps) a *BusFault.
func IsBusFault(err error) bool {
	var bf *BusFault
	return errors.As(err, &bf)
}

// PageSize is the dirty-tracking granularity of a region: writes mark the
// covering pages dirty, and the snapshot/delta restoration path re-ships only
// dirty pages.
const PageSize = 1024

// Region is a contiguous address range backed by a byte slab.
type Region struct {
	Name string
	Base uint64
	Perm Perm
	data []byte
	// dirty marks pages written through the map since the last ClearDirty.
	// pinned marks pages that devices mutate directly through Bytes()
	// (coverage buffer, mailbox, FSB): those bypass the map's write path, so
	// they are treated as always dirty.
	dirty  []bool
	pinned []bool
}

// NewRegion allocates a region of the given size filled with zeros.
func NewRegion(name string, base uint64, size int, perm Perm) *Region {
	return &Region{Name: name, Base: base, Perm: perm, data: make([]byte, size),
		dirty: make([]bool, pages(size)), pinned: make([]bool, pages(size))}
}

// BackedRegion wraps an existing slab (e.g. a flash device's array) so writes
// through the map and through the device stay coherent.
func BackedRegion(name string, base uint64, data []byte, perm Perm) *Region {
	return &Region{Name: name, Base: base, Perm: perm, data: data,
		dirty: make([]bool, pages(len(data))), pinned: make([]bool, pages(len(data)))}
}

func pages(size int) int { return (size + PageSize - 1) / PageSize }

// Size returns the region length in bytes.
func (r *Region) Size() int { return len(r.data) }

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + uint64(len(r.data)) }

// Contains reports whether [addr, addr+size) lies entirely inside the region.
func (r *Region) Contains(addr uint64, size int) bool {
	return addr >= r.Base && addr+uint64(size) <= r.End() && addr+uint64(size) >= addr
}

// Bytes exposes the raw slab. Intended for devices that own the region.
func (r *Region) Bytes() []byte { return r.data }

// markDirty flags every page overlapping [off, off+size).
func (r *Region) markDirty(off uint64, size int) {
	if size <= 0 {
		return
	}
	last := (off + uint64(size) - 1) / PageSize
	for p := off / PageSize; p <= last && p < uint64(len(r.dirty)); p++ {
		r.dirty[p] = true
	}
}

// PinDirty marks the pages covering [off, off+size) as permanently dirty:
// device writes through Bytes() bypass the map's write path, so regions a
// device mutates in place (coverage buffer, mailbox) stay conservatively
// dirty across ClearDirty.
func (r *Region) PinDirty(off uint64, size int) {
	if size <= 0 {
		return
	}
	last := (off + uint64(size) - 1) / PageSize
	for p := off / PageSize; p <= last && p < uint64(len(r.pinned)); p++ {
		r.pinned[p] = true
	}
}

// Dirty reports whether page p is dirty (written since ClearDirty, or pinned).
func (r *Region) Dirty(p int) bool {
	return p < len(r.dirty) && (r.dirty[p] || r.pinned[p])
}

// Pages returns the region's page count at the dirty-tracking granularity.
func (r *Region) Pages() int { return len(r.dirty) }

// DirtyPages returns the indices of every dirty or pinned page, ascending.
func (r *Region) DirtyPages() []int {
	var out []int
	for p := range r.dirty {
		if r.dirty[p] || r.pinned[p] {
			out = append(out, p)
		}
	}
	return out
}

// ClearDirty resets the written-page bitmap; pinned pages stay dirty.
func (r *Region) ClearDirty() {
	for p := range r.dirty {
		r.dirty[p] = false
	}
}

// MarkAllDirty flags every page, forcing the next delta to re-ship the whole
// region.
func (r *Region) MarkAllDirty() {
	for p := range r.dirty {
		r.dirty[p] = true
	}
}

// Map is an ordered set of non-overlapping regions.
type Map struct {
	regions []*Region
}

// NewMap returns an empty memory map.
func NewMap() *Map { return &Map{} }

// Add inserts a region, keeping the map sorted by base address. It returns an
// error if the region overlaps an existing one.
func (m *Map) Add(r *Region) error {
	for _, q := range m.regions {
		if r.Base < q.End() && q.Base < r.End() {
			return fmt.Errorf("region %s [%#x,%#x) overlaps %s [%#x,%#x)",
				r.Name, r.Base, r.End(), q.Name, q.Base, q.End())
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return nil
}

// MustAdd is Add for static board layouts, panicking on overlap.
func (m *Map) MustAdd(r *Region) {
	if err := m.Add(r); err != nil {
		panic(err)
	}
}

// Region returns the region containing [addr, addr+size), or nil.
func (m *Map) Region(addr uint64, size int) *Region {
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].End() > addr })
	if i < len(m.regions) && m.regions[i].Contains(addr, size) {
		return m.regions[i]
	}
	return nil
}

// Lookup returns a region by name, or nil.
func (m *Map) Lookup(name string) *Region {
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Regions returns the regions in address order. The slice is shared; callers
// must not mutate it.
func (m *Map) Regions() []*Region { return m.regions }

func (m *Map) slice(addr uint64, size int, op string, need Perm) ([]byte, error) {
	if size < 0 || addr+uint64(size) < addr {
		return nil, &BusFault{Addr: addr, Size: size, Op: op, Why: "straddle"}
	}
	r := m.Region(addr, size)
	if r == nil {
		// Distinguish straddling a boundary from fully unmapped for reports.
		if m.Region(addr, 1) != nil {
			return nil, &BusFault{Addr: addr, Size: size, Op: op, Why: "straddle"}
		}
		return nil, &BusFault{Addr: addr, Size: size, Op: op, Why: "unmapped"}
	}
	if r.Perm&need == 0 {
		return nil, &BusFault{Addr: addr, Size: size, Op: op, Why: "perm"}
	}
	off := addr - r.Base
	if need&Write != 0 {
		r.markDirty(off, size)
	}
	return r.data[off : off+uint64(size)], nil
}

// Read copies size bytes starting at addr.
func (m *Map) Read(addr uint64, size int) ([]byte, error) {
	src, err := m.slice(addr, size, "read", Read)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, src)
	return out, nil
}

// Write stores data at addr.
func (m *Map) Write(addr uint64, data []byte) error {
	dst, err := m.slice(addr, len(data), "write", Write)
	if err != nil {
		return err
	}
	copy(dst, data)
	return nil
}

// ReadAt implements partial reads into buf, mirroring io semantics for the
// debug server's memory commands.
func (m *Map) ReadAt(buf []byte, addr uint64) error {
	src, err := m.slice(addr, len(buf), "read", Read)
	if err != nil {
		return err
	}
	copy(buf, src)
	return nil
}

// U32 reads a little-endian uint32.
func (m *Map) U32(addr uint64) (uint32, error) {
	b, err := m.slice(addr, 4, "read", Read)
	if err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// PutU32 writes a little-endian uint32.
func (m *Map) PutU32(addr uint64, v uint32) error {
	b, err := m.slice(addr, 4, "write", Write)
	if err != nil {
		return err
	}
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// U64 reads a little-endian uint64.
func (m *Map) U64(addr uint64) (uint64, error) {
	b, err := m.slice(addr, 8, "read", Read)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// PutU64 writes a little-endian uint64.
func (m *Map) PutU64(addr uint64, v uint64) error {
	b, err := m.slice(addr, 8, "write", Write)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return nil
}

// Fill sets size bytes at addr to b (used by erase and test scaffolding).
func (m *Map) Fill(addr uint64, size int, val byte) error {
	dst, err := m.slice(addr, size, "write", Write)
	if err != nil {
		return err
	}
	for i := range dst {
		dst[i] = val
	}
	return nil
}
