package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testMap(t *testing.T) *Map {
	t.Helper()
	m := NewMap()
	m.MustAdd(NewRegion("flash", 0x0800_0000, 0x1000, RX))
	m.MustAdd(NewRegion("ram", 0x2000_0000, 0x1000, RW))
	return m
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := testMap(t)
	data := []byte{1, 2, 3, 4, 5}
	if err := m.Write(0x2000_0010, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x2000_0010, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %v want %v", got, data)
	}
}

func TestPermissionFaults(t *testing.T) {
	m := testMap(t)
	if err := m.Write(0x0800_0000, []byte{1}); err == nil {
		t.Fatal("write to RX flash succeeded")
	} else if !IsBusFault(err) {
		t.Fatalf("want BusFault, got %T", err)
	}
	if _, err := m.Read(0x0800_0000, 4); err != nil {
		t.Fatalf("read from flash failed: %v", err)
	}
}

func TestUnmappedAndStraddle(t *testing.T) {
	m := testMap(t)
	if _, err := m.Read(0x1000_0000, 4); !IsBusFault(err) {
		t.Fatalf("unmapped read: %v", err)
	}
	// Straddles the end of RAM.
	if _, err := m.Read(0x2000_0FFE, 8); !IsBusFault(err) {
		t.Fatalf("straddling read: %v", err)
	}
	var bf *BusFault
	_, err := m.Read(0x2000_0FFE, 8)
	if !asBusFault(err, &bf) || bf.Why != "straddle" {
		t.Fatalf("want straddle fault, got %v", err)
	}
}

func asBusFault(err error, out **BusFault) bool {
	bf, ok := err.(*BusFault)
	if ok {
		*out = bf
	}
	return ok
}

func TestOverlapRejected(t *testing.T) {
	m := NewMap()
	m.MustAdd(NewRegion("a", 0x1000, 0x100, RW))
	if err := m.Add(NewRegion("b", 0x10FF, 0x100, RW)); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := m.Add(NewRegion("c", 0x1100, 0x100, RW)); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
}

func TestU32U64RoundTrip(t *testing.T) {
	m := testMap(t)
	if err := m.PutU32(0x2000_0000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.U32(0x2000_0000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("U32 = %#x, %v", v, err)
	}
	if err := m.PutU64(0x2000_0008, 0x0123456789ABCDEF); err != nil {
		t.Fatal(err)
	}
	w, err := m.U64(0x2000_0008)
	if err != nil || w != 0x0123456789ABCDEF {
		t.Fatalf("U64 = %#x, %v", w, err)
	}
	// Little-endian layout check.
	b, _ := m.Read(0x2000_0000, 4)
	if !bytes.Equal(b, []byte{0xEF, 0xBE, 0xAD, 0xDE}) {
		t.Fatalf("LE bytes = %v", b)
	}
}

func TestLookupAndLocate(t *testing.T) {
	m := testMap(t)
	if r := m.Lookup("ram"); r == nil || r.Base != 0x2000_0000 {
		t.Fatalf("Lookup(ram) = %+v", r)
	}
	if r := m.Lookup("nope"); r != nil {
		t.Fatal("Lookup(nope) found a region")
	}
	if r := m.Region(0x2000_0800, 16); r == nil || r.Name != "ram" {
		t.Fatalf("Region mid-ram = %v", r)
	}
}

func TestFill(t *testing.T) {
	m := testMap(t)
	if err := m.Fill(0x2000_0000, 16, 0xAA); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Read(0x2000_0000, 16)
	for _, x := range b {
		if x != 0xAA {
			t.Fatalf("fill byte %#x", x)
		}
	}
}

func TestPropertyU64RoundTrip(t *testing.T) {
	m := testMap(t)
	f := func(v uint64, off uint16) bool {
		addr := 0x2000_0000 + uint64(off%0xF00)
		if m.PutU64(addr, v) != nil {
			return false
		}
		got, err := m.U64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermString(t *testing.T) {
	if got := (Read | Write).String(); got != "rw-" {
		t.Fatalf("perm string %q", got)
	}
	if got := RX.String(); got != "r-x" {
		t.Fatalf("perm string %q", got)
	}
}
