package eof

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/trace"
)

func TestTargetsAndBoards(t *testing.T) {
	ts := Targets()
	if len(ts) != 5 {
		t.Fatalf("targets: %v", ts)
	}
	bs := Boards()
	if len(bs) < 3 {
		t.Fatalf("boards: %v", bs)
	}
}

func TestCampaignPublicAPI(t *testing.T) {
	c, err := NewCampaign(Options{OS: "zephyr", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OS != "zephyr" || rep.Board != "stm32h745" {
		t.Fatalf("report ids: %+v", rep)
	}
	if rep.Execs == 0 || rep.Edges == 0 || len(rep.Series) == 0 {
		t.Fatalf("report empty: %+v", rep)
	}
	if rep.Duration < 5*time.Minute {
		t.Fatalf("duration: %v", rep.Duration)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := NewCampaign(Options{OS: "beos"}); err == nil {
		t.Fatal("unknown OS accepted")
	}
	if _, err := NewCampaign(Options{OS: "zephyr", Board: "arduino"}); err == nil {
		t.Fatal("unknown board accepted")
	}
	if _, err := NewCampaign(Options{OS: "freertos", RestrictAPIs: []string{"nope"}}); err == nil {
		t.Fatal("empty call filter accepted")
	}
}

func TestCampaignBugReporting(t *testing.T) {
	c, err := NewCampaign(Options{OS: "rtthread", Board: "esp32c3", Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(25 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Skip("no bugs in this short window")
	}
	b := rep.Bugs[0]
	if b.Title == "" || b.Signature == "" || b.Monitor == "" {
		t.Fatalf("bug fields: %+v", b)
	}
	if b.Kind == "panic" && len(b.Backtrace) == 0 {
		t.Fatalf("panic without backtrace: %+v", b)
	}
	if b.Reproducer == "" {
		t.Fatal("no reproducer")
	}
}

func TestGenerateSpecPublicAPI(t *testing.T) {
	text, dropped, err := GenerateSpec("nuttx")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "nxmq_timedsend(") {
		t.Fatalf("spec missing calls:\n%s", text)
	}
	_ = dropped
	if _, _, err := GenerateSpec("riot"); err == nil {
		t.Fatal("unknown OS accepted")
	}
}

func TestAppLevelOptions(t *testing.T) {
	c, err := NewCampaign(Options{
		OS:                "freertos",
		Seed:              3,
		RestrictAPIs:      []string{"json_parse", "json_encode", "json_free"},
		InstrumentModules: []string{"lib/json"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges == 0 {
		t.Fatal("no module coverage")
	}
	// Confined instrumentation keeps totals well below full-system numbers.
	if rep.Edges > 600 {
		t.Fatalf("module confinement leaking: %d edges", rep.Edges)
	}
}

func TestObservabilityPublicAPI(t *testing.T) {
	var journal, status bytes.Buffer
	c, err := NewCampaign(Options{
		OS:           "freertos",
		Seed:         7,
		TraceJSONL:   &journal,
		StatusEvery:  time.Nanosecond,
		StatusWriter: &status,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.LinkPerCmd) == 0 {
		t.Fatal("LinkPerCmd missing from the public report")
	}
	var total int64
	for _, st := range rep.LinkPerCmd {
		if st.Cmd == "" || st.Count <= 0 {
			t.Fatalf("bad per-command stat: %+v", st)
		}
		total += st.Count
	}
	if total != rep.LinkRoundTrips {
		t.Fatalf("per-command counts sum to %d, report says %d round trips", total, rep.LinkRoundTrips)
	}

	if rep.TimeBy.Sum() != rep.Duration {
		t.Fatalf("public TimeBy %v sums to %v, want Duration %v", rep.TimeBy, rep.TimeBy.Sum(), rep.Duration)
	}

	lines := strings.Split(strings.TrimSpace(journal.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	// The first line is the versioned journal header, not an event.
	hdr, err := trace.ParseHeader([]byte(lines[0]))
	if err != nil {
		t.Fatalf("journal header: %v", err)
	}
	if hdr.V != trace.JournalVersion || hdr.OS != "freertos" || hdr.Seed != 7 || hdr.Shards != 1 {
		t.Fatalf("bad journal header: %+v", hdr)
	}
	if hdr.Digest == "" {
		t.Fatal("journal header missing the options digest")
	}
	lines = lines[1:]
	execEnds := 0
	for i, l := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("journal line %d is not JSON: %v\n%s", i, err, l)
		}
		for _, key := range []string{"seq", "at_ns", "shard", "kind"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("journal line %d missing %q: %s", i, key, l)
			}
		}
		if ev["kind"] == "exec-end" {
			execEnds++
		}
	}
	if execEnds != rep.Execs {
		t.Fatalf("journal has %d exec-end lines, report says %d execs", execEnds, rep.Execs)
	}

	if !strings.Contains(status.String(), "[eof] t=") {
		t.Fatalf("no live status lines: %q", status.String())
	}
}

func TestPublicBugCarriesTrace(t *testing.T) {
	c, err := NewCampaign(Options{OS: "rtthread", Board: "esp32c3", Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(25 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Skip("no bugs in this short window")
	}
	for _, b := range rep.Bugs {
		if len(b.Trace) == 0 {
			t.Fatalf("bug %q lost its flight-recorder trace in the public API", b.Signature)
		}
	}
}

// TestTriagePublicAPI drives the whole triage pipeline through the public
// surface: a triage-enabled campaign yields classified, minimized findings;
// a stable finding's repro file round-trips through ReplayRepro on a fresh
// board and confirms.
func TestTriagePublicAPI(t *testing.T) {
	c, err := NewCampaign(Options{OS: "rtthread", Seed: 1234, Triage: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(20 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Skip("no bugs in this short window")
	}
	if rep.TriagedBugs != len(rep.Bugs) || rep.TriageReplays == 0 {
		t.Fatalf("triage stats: %d/%d triaged, %d replays", rep.TriagedBugs, len(rep.Bugs), rep.TriageReplays)
	}
	if rep.TimeBy.Triaging <= 0 {
		t.Fatalf("no triaging time in the public report: %v", rep.TimeBy)
	}
	var stable *Bug
	for i := range rep.Bugs {
		b := &rep.Bugs[i]
		if b.Cluster == "" || b.Reproducibility == "" {
			t.Fatalf("bug %q missing triage fields", b.Signature)
		}
		if stable == nil && b.Reproducibility == "stable" {
			stable = b
		}
	}
	if stable == nil {
		t.Skip("no stable finding in this window")
	}
	file, err := stable.ReproFile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayRepro(file, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cluster != stable.Cluster || res.OS != "rtthread" {
		t.Fatalf("replay identity mismatch: %+v", res)
	}
	if !res.Confirmed {
		t.Fatalf("stable repro did not confirm on a fresh board: %+v", res)
	}
	t.Logf("replayed %s: %d/%d", res.Cluster, res.Hits, res.Replays)
}
