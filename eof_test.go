package eof

import (
	"strings"
	"testing"
	"time"
)

func TestTargetsAndBoards(t *testing.T) {
	ts := Targets()
	if len(ts) != 5 {
		t.Fatalf("targets: %v", ts)
	}
	bs := Boards()
	if len(bs) < 3 {
		t.Fatalf("boards: %v", bs)
	}
}

func TestCampaignPublicAPI(t *testing.T) {
	c, err := NewCampaign(Options{OS: "zephyr", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OS != "zephyr" || rep.Board != "stm32h745" {
		t.Fatalf("report ids: %+v", rep)
	}
	if rep.Execs == 0 || rep.Edges == 0 || len(rep.Series) == 0 {
		t.Fatalf("report empty: %+v", rep)
	}
	if rep.Duration < 5*time.Minute {
		t.Fatalf("duration: %v", rep.Duration)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := NewCampaign(Options{OS: "beos"}); err == nil {
		t.Fatal("unknown OS accepted")
	}
	if _, err := NewCampaign(Options{OS: "zephyr", Board: "arduino"}); err == nil {
		t.Fatal("unknown board accepted")
	}
	if _, err := NewCampaign(Options{OS: "freertos", RestrictAPIs: []string{"nope"}}); err == nil {
		t.Fatal("empty call filter accepted")
	}
}

func TestCampaignBugReporting(t *testing.T) {
	c, err := NewCampaign(Options{OS: "rtthread", Board: "esp32c3", Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(25 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) == 0 {
		t.Skip("no bugs in this short window")
	}
	b := rep.Bugs[0]
	if b.Title == "" || b.Signature == "" || b.Monitor == "" {
		t.Fatalf("bug fields: %+v", b)
	}
	if b.Kind == "panic" && len(b.Backtrace) == 0 {
		t.Fatalf("panic without backtrace: %+v", b)
	}
	if b.Reproducer == "" {
		t.Fatal("no reproducer")
	}
}

func TestGenerateSpecPublicAPI(t *testing.T) {
	text, dropped, err := GenerateSpec("nuttx")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "nxmq_timedsend(") {
		t.Fatalf("spec missing calls:\n%s", text)
	}
	_ = dropped
	if _, _, err := GenerateSpec("riot"); err == nil {
		t.Fatal("unknown OS accepted")
	}
}

func TestAppLevelOptions(t *testing.T) {
	c, err := NewCampaign(Options{
		OS:                "freertos",
		Seed:              3,
		RestrictAPIs:      []string{"json_parse", "json_encode", "json_free"},
		InstrumentModules: []string{"lib/json"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Run(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges == 0 {
		t.Fatal("no module coverage")
	}
	// Confined instrumentation keeps totals well below full-system numbers.
	if rep.Edges > 600 {
		t.Fatalf("module confinement leaking: %d edges", rep.Edges)
	}
}
