package eof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/eof-fuzz/eof/internal/journal"
	"github.com/eof-fuzz/eof/internal/metrics"
	"github.com/eof-fuzz/eof/internal/trace"
)

// scrape fetches and parses a Prometheus text exposition into
// "name" / `name{label="v"}` -> value.
func scrape(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if len(out) == 0 {
		t.Fatal("empty scrape")
	}
	return out
}

// TestMetricsScrapeMatchesReport runs a fleet campaign with the telemetry
// server attached and asserts the acceptance criteria: the scraped counters
// equal the final Report exactly (execs, edges, TimeBy), /status mirrors the
// per-shard breakdown, and the journal analytics reproduce Report.TimeBy to
// the tick.
func TestMetricsScrapeMatchesReport(t *testing.T) {
	var buf bytes.Buffer
	c, err := NewCampaign(Options{
		OS:          "freertos",
		Seed:        11,
		Shards:      2,
		MetricsAddr: "127.0.0.1:0",
		TraceJSONL:  &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("no telemetry address with MetricsAddr set")
	}
	rep, err := c.Run(16 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	m := scrape(t, addr)
	if got := m["eof_execs_total"]; got != float64(rep.Execs) {
		t.Fatalf("scraped execs %v, report %d", got, rep.Execs)
	}
	if got := m["eof_edges"]; got != float64(rep.Edges) {
		t.Fatalf("scraped edges %v, report %d", got, rep.Edges)
	}
	if got := m["eof_restores_total"]; got != float64(rep.Restores) {
		t.Fatalf("scraped restores %v, report %d", got, rep.Restores)
	}
	if got := m["eof_duration_seconds"]; got != rep.Duration.Seconds() {
		t.Fatalf("scraped duration %v, report %v", got, rep.Duration.Seconds())
	}
	for _, cat := range trace.Categories() {
		key := fmt.Sprintf("eof_time_by_seconds_total{category=%q}", cat.String())
		if got := m[key]; got != rep.TimeBy.Of(cat).Seconds() {
			t.Fatalf("scraped %s = %v, report %v", key, got, rep.TimeBy.Of(cat).Seconds())
		}
	}

	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc metrics.StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/status decode: %v", err)
	}
	if doc.Execs != rep.Execs {
		t.Fatalf("/status execs %d, report %d", doc.Execs, rep.Execs)
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("/status shards: %+v", doc.Shards)
	}
	shardExecs := 0
	for _, s := range doc.Shards {
		shardExecs += s.Execs
	}
	if shardExecs != rep.Execs {
		t.Fatalf("/status per-shard execs sum to %d, report %d", shardExecs, rep.Execs)
	}

	// pprof must be mounted on the campaign mux.
	pr, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %s", pr.Status)
	}

	// The journal analytics must rebuild Report.TimeBy from the TimeBudget
	// records exactly.
	j, err := journal.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !j.HasHeader {
		t.Fatal("fleet journal missing the header record")
	}
	sum := journal.Summarize(j)
	if sum.Execs != rep.Execs {
		t.Fatalf("journal summary execs %d, report %d", sum.Execs, rep.Execs)
	}
	if sum.TimeBy != rep.TimeBy {
		t.Fatalf("journal summary TimeBy %+v, report %+v", sum.TimeBy, rep.TimeBy)
	}
	if sum.Duration != rep.Duration {
		t.Fatalf("journal summary duration %v, report %v", sum.Duration, rep.Duration)
	}
	for _, b := range sum.Budgets {
		if b.Drift != 0 {
			t.Fatalf("shard %d budget drift %v", b.Shard, b.Drift)
		}
	}
}

// TestMetricsOffJournalByteIdentical asserts attaching the telemetry server
// never perturbs the deterministic journal or the report: the same seeded
// campaign with and without MetricsAddr produces byte-identical journals.
func TestMetricsOffJournalByteIdentical(t *testing.T) {
	run := func(metricsAddr string) ([]byte, *Report) {
		var buf bytes.Buffer
		c, err := NewCampaign(Options{
			OS:          "rtthread",
			Seed:        23,
			Shards:      2,
			MetricsAddr: metricsAddr,
			TraceJSONL:  &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		rep, err := c.Run(12 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep
	}
	offJournal, offRep := run("")
	onJournal, onRep := run("127.0.0.1:0")
	if !bytes.Equal(offJournal, onJournal) {
		t.Fatal("journal bytes differ between metrics-off and metrics-on runs")
	}
	if offRep.Execs != onRep.Execs || offRep.Edges != onRep.Edges || offRep.TimeBy != onRep.TimeBy {
		t.Fatalf("reports differ between metrics-off and metrics-on runs:\n%+v\n%+v", offRep, onRep)
	}
}
